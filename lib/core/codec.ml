(* Stable-storage representation of the consistency-control ensemble.

   The protocols require each site to persist (operation number, version
   number, partition set) across crashes — a copy that forgot its
   partition set could neither vote nor recover safely.  This codec gives
   the ensemble a compact, versioned, checksummed on-disk form:

       magic "DVT1" | adler32 | op_no | version | partition bitmask

   Integers are little-endian fixed-width; the checksum covers everything
   after itself, so torn or corrupted records are detected rather than
   trusted. *)

let magic = "DVT1"

let encoded_size = 4 + 4 + 8 + 8 + 8

exception Corrupt of string

(* Adler-32 (RFC 1950): simple, fast, adequate for torn-write detection. *)
let adler32 bytes ~off ~len =
  let modulus = 65521 in
  let a = ref 1 and b = ref 0 in
  for i = off to off + len - 1 do
    a := (!a + Char.code (Bytes.get bytes i)) mod modulus;
    b := (!b + !a) mod modulus
  done;
  Int32.logor
    (Int32.shift_left (Int32.of_int !b) 16)
    (Int32.of_int !a)

let encode_replica replica =
  let buffer = Bytes.create encoded_size in
  Bytes.blit_string magic 0 buffer 0 4;
  Bytes.set_int64_le buffer 8 (Int64.of_int (Replica.op_no replica));
  Bytes.set_int64_le buffer 16 (Int64.of_int (Replica.version replica));
  Bytes.set_int64_le buffer 24 (Int64.of_int (Site_set.to_int (Replica.partition replica)));
  (* Checksum over the payload (everything after the checksum field). *)
  Bytes.set_int32_le buffer 4 (adler32 buffer ~off:8 ~len:(encoded_size - 8));
  Bytes.to_string buffer

let decode_replica data =
  if String.length data <> encoded_size then
    raise (Corrupt (Printf.sprintf "expected %d bytes, got %d" encoded_size
                      (String.length data)));
  let buffer = Bytes.of_string data in
  if Bytes.sub_string buffer 0 4 <> magic then raise (Corrupt "bad magic");
  let stored = Bytes.get_int32_le buffer 4 in
  let computed = adler32 buffer ~off:8 ~len:(encoded_size - 8) in
  if not (Int32.equal stored computed) then raise (Corrupt "checksum mismatch");
  let read_int offset =
    let v = Bytes.get_int64_le buffer offset in
    if Int64.compare v 0L < 0 || Int64.compare v (Int64.of_int max_int) > 0 then
      raise (Corrupt "field out of range");
    Int64.to_int v
  in
  let op_no = read_int 8 in
  let version = read_int 16 in
  let mask = read_int 24 in
  if mask land lnot (Site_set.to_int (Site_set.universe Site_set.max_sites)) <> 0 then
    raise (Corrupt "partition mask has illegal bits");
  Replica.make ~op_no ~version ~partition:(Site_set.of_int_unsafe mask)

(* Total variants: corruption as data, not control flow.  Recovery code
   paths (and fuzzers) want to inspect a bad record without wrapping every
   call in an exception handler. *)
let decode_result data =
  match decode_replica data with
  | replica -> Ok replica
  | exception Corrupt reason -> Error reason

let checksum = adler32

(* Durable atomic replace.  Write-then-rename alone is atomic with
   respect to crashes of the *writer*, but not to power loss: the rename
   can reach the journal while the temp file's bytes are still in the
   page cache, leaving a zero-length or torn file after the crash.  The
   full discipline is: flush the data (fsync the temp file), then make
   the name switch durable (fsync the containing directory after the
   rename).  A crash at any point leaves either the complete old record
   or the complete new one. *)
let write_file_atomic ?(fsync = true) ~path data =
  let tmp = path ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let bytes = Bytes.unsafe_of_string data in
      let len = Bytes.length bytes in
      let written = ref 0 in
      while !written < len do
        written := !written + Unix.write fd bytes !written (len - !written)
      done;
      if fsync then Unix.fsync fd);
  Sys.rename tmp path;
  (* Directory fsync makes the rename itself durable.  Some filesystems
     refuse fsync on directories; the rename is then as durable as the
     platform allows, which is all we can do. *)
  if fsync then
    let dir = Filename.dirname path in
    match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
    | exception Unix.Unix_error _ -> ()
    | dir_fd ->
        Fun.protect
          ~finally:(fun () -> Unix.close dir_fd)
          (fun () -> try Unix.fsync dir_fd with Unix.Unix_error _ -> ())

let read_file ~path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      really_input_string ic len)

let read_file_result ~path =
  match read_file ~path with
  | data -> Ok data
  | exception Sys_error reason -> Error reason

(* Persist / restore through plain files. *)
let save_replica ~path replica = write_file_atomic ~path (encode_replica replica)

let load_replica ~path = decode_replica (read_file ~path)

let load_result ~path =
  match load_replica ~path with
  | replica -> Ok replica
  | exception Corrupt reason -> Error reason
  | exception Sys_error reason -> Error reason
