(* Scripted walkthroughs: an interpreter for the kind of step-by-step
   examples the paper narrates in §2 (three copies A, B, C) and §3 (four
   copies on three segments).  Connectivity is declared explicitly (site
   failures and link partitions), operations run against the resulting
   components, and the per-site state tables can be printed in the paper's
   own layout — which makes the examples directly checkable as golden
   tests. *)

type t = {
  ctx : Operation.ctx;
  names : string array;
  universe : Site_set.t;
  states : Replica.t array;
  mutable up : Site_set.t;
  (* Explicit connectivity groups covering the universe; live sites in the
     same group communicate.  [None] means fully connected. *)
  mutable groups : Site_set.t list option;
  mutable fresh : Site_set.t; (* continuously up since last commit *)
  mutable log : string list; (* newest first *)
}

let name_to_site t label =
  let rec go i =
    if i >= Array.length t.names then
      invalid_arg (Printf.sprintf "Scenario: unknown site %S" label)
    else if String.equal t.names.(i) label then i
    else go (i + 1)
  in
  go 0

let create ?(flavor = Decision.ldv_flavor) ?segment_of ~names () =
  let n = Array.length names in
  if n = 0 then invalid_arg "Scenario.create: no sites";
  let universe = Site_set.universe n in
  let ordering = Ordering.default n in
  let segment_of = Option.value segment_of ~default:(fun _ -> 0) in
  {
    ctx = { Operation.flavor; ordering; segment_of };
    names;
    universe;
    states = Array.make n (Replica.initial universe);
    up = universe;
    groups = None;
    fresh = universe;
    log = [];
  }

let note t fmt = Format.kasprintf (fun s -> t.log <- s :: t.log) fmt

let log t = List.rev t.log

let states t = t.states

let state t label = t.states.(name_to_site t label)

let up_sites t = t.up

(* Live sites, grouped by declared connectivity. *)
let components t =
  match t.groups with
  | None -> if Site_set.is_empty t.up then [] else [ t.up ]
  | Some groups ->
      List.filter_map
        (fun group ->
          let live = Site_set.inter group t.up in
          if Site_set.is_empty live then None else Some live)
        groups

let fail t label =
  let site = name_to_site t label in
  t.up <- Site_set.remove site t.up;
  t.fresh <- Site_set.remove site t.fresh;
  note t "site %s fails" label

let restart t label =
  let site = name_to_site t label in
  t.up <- Site_set.add site t.up;
  note t "site %s restarts (recovery not yet run)" label

let partition t group_labels =
  let groups =
    List.map (fun labels -> Site_set.of_list (List.map (name_to_site t) labels)) group_labels
  in
  let covered = List.fold_left Site_set.union Site_set.empty groups in
  if not (Site_set.equal covered t.universe) then
    invalid_arg "Scenario.partition: groups must cover every site exactly once";
  let total = List.fold_left (fun acc g -> acc + Site_set.cardinal g) 0 groups in
  if total <> Site_set.cardinal t.universe then
    invalid_arg "Scenario.partition: groups overlap";
  t.groups <- Some groups;
  note t "network partitions into %s"
    (String.concat " | "
       (List.map
          (fun g -> Fmt.str "%a" (Site_set.pp_names t.names) g)
          groups))

let heal t =
  t.groups <- None;
  note t "network heals"

(* Run an operation in every component; the decision rule guarantees at
   most one grant.  Returns the granting component, if any. *)
let run_op t ~label op =
  let granted =
    List.fold_left
      (fun acc component ->
        match op ~reachable:component with
        | Decision.Granted _ ->
            t.fresh <- Site_set.union t.fresh component;
            Some component
        | Decision.Denied _ -> acc)
      None (components t)
  in
  (match granted with
  | Some component ->
      note t "%s granted in %a" label (Site_set.pp_names t.names) component
  | None -> note t "%s denied everywhere" label);
  granted

let write t =
  run_op t ~label:"write" (fun ~reachable ->
      Operation.write t.ctx t.states ~fresh:t.fresh ~reachable ())

let read t =
  run_op t ~label:"read" (fun ~reachable ->
      Operation.read t.ctx t.states ~fresh:t.fresh ~reachable ())

let writes t n =
  let rec go i last = if i >= n then last else go (i + 1) (write t) in
  go 0 None

(* Bring a site back up and run its RECOVER protocol (Figure 3: retried
   until successful — here, attempted once against current connectivity;
   returns whether it succeeded). *)
let recover t label =
  let site = name_to_site t label in
  t.up <- Site_set.add site t.up;
  let component =
    List.find_opt (fun c -> Site_set.mem site c) (components t)
  in
  match component with
  | None -> false
  | Some reachable -> (
      match Operation.recover t.ctx t.states ~fresh:t.fresh ~site ~reachable () with
      | Decision.Granted _ ->
          t.fresh <- Site_set.add site t.fresh;
          note t "site %s recovers and rejoins the majority partition" label;
          true
      | Decision.Denied reason ->
          note t "site %s restarts but cannot rejoin (%a)" label Decision.pp_denial reason;
          false)

let is_available t =
  List.exists
    (fun reachable ->
      Decision.is_granted
        (Operation.evaluate t.ctx t.states ~fresh:t.fresh ~reachable ()))
    (components t)

(* The paper's state-table layout:
       A            B            C
     o, v = 8     o, v = 8     o, v = 8
     P = {A,B,C}  P = {A,B,C}  P = {A,B,C}   *)
let pp_table ppf t =
  let n = Array.length t.names in
  let column site =
    let r = t.states.(site) in
    let counters =
      if Replica.op_no r = Replica.version r then
        Printf.sprintf "o, v = %d" (Replica.op_no r)
      else Printf.sprintf "o = %d, v = %d" (Replica.op_no r) (Replica.version r)
    in
    let partition = Fmt.str "P = %a" (Site_set.pp_names t.names) (Replica.partition r) in
    let status = if Site_set.mem site t.up then t.names.(site) else t.names.(site) ^ " (down)" in
    (status, counters, partition)
  in
  let columns = List.init n column in
  let width =
    List.fold_left
      (fun acc (a, b, c) -> max acc (max (String.length a) (max (String.length b) (String.length c))))
      0 columns
    + 2
  in
  let pad s = s ^ String.make (width - String.length s) ' ' in
  let row f = String.concat "" (List.map (fun c -> pad (f c)) columns) in
  Fmt.pf ppf "%s@.%s@.%s@."
    (row (fun (a, _, _) -> a))
    (row (fun (_, b, _) -> b))
    (row (fun (_, _, c) -> c))
