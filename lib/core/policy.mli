(** The six consistency policies of the paper's study, as connectivity-
    driven state machines: MCV, DV, LDV, ODV, TDV, OTDV.

    Drive a policy by calling {!handle_topology_change} whenever the
    network state changes and {!handle_access} whenever the replicated file
    is accessed; {!is_available} is the pure availability probe used as the
    simulator's availability indicator. *)

type kind = Mcv | Dv | Ldv | Odv | Tdv | Otdv

val all_kinds : kind list
(** In the paper's column order: MCV, DV, LDV, ODV, TDV, OTDV. *)

val kind_name : kind -> string
val kind_of_string : string -> kind option

val is_optimistic : kind -> bool
(** True for ODV and OTDV: quorums adjust only at access time. *)

val flavor_of_kind : kind -> Decision.flavor option
(** The decision rule; [None] for the stateless MCV. *)

type view = { components : Site_set.t list }
(** The live sites of the network, partitioned into mutually communicating
    groups.  Sites not holding copies may appear; they are ignored. *)

type recovery = [ `At_access | `At_repair ]
(** When a repaired site runs its RECOVER protocol under the optimistic
    policies: folded into the next access (default; least traffic) or
    immediately, as Figure 3's retry loop suggests. *)

type t

val create :
  ?flavor:Decision.flavor ->
  ?recovery:recovery ->
  kind ->
  universe:Site_set.t ->
  n_sites:int ->
  segment_of:(Site_set.site -> int) ->
  ordering:Ordering.t ->
  t
(** [universe] is the set of sites holding copies; [n_sites] sizes the
    state array (site ids must be < [n_sites]).  [flavor] overrides the
    kind's default decision rule — e.g. pass {!Decision.tdv_safe_flavor}
    to run TDV/OTDV with the freshness correction.
    @raise Invalid_argument on an empty universe. *)

val kind : t -> kind
val universe : t -> Site_set.t
val states : t -> Replica.t array
val replica : t -> Site_set.site -> Replica.t

val fresh : t -> Site_set.t
(** Sites continuously up since their last commit — the only sites allowed
    to sponsor topological vote claims (TDV/OTDV). *)

val handle_topology_change : t -> view -> unit
(** Site failure/repair or partition change.  DV/LDV/TDV refresh quorums
    immediately (the paper's instantaneous state information); MCV and the
    optimistic policies do nothing. *)

val handle_access : t -> view -> bool
(** A file access; returns whether it was granted.  For ODV/OTDV this is
    when quorum adjustment and site reintegration happen. *)

val handle_repair : t -> view -> site:Site_set.site -> unit
(** Notification that [site] just came back up.  No-op except for
    optimistic policies created with [~recovery:`At_repair], which run the
    site's RECOVER immediately. *)

val is_available : t -> view -> bool
(** Pure probe: would an access succeed now?  Never mutates state. *)

val pp_states : ?names:string array -> Format.formatter -> t -> unit
