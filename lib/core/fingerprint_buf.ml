(* Compact self-delimiting integer encoding for state fingerprints.

   Zigzag maps small magnitudes of either sign onto small naturals, which
   then fit a single byte almost always (fingerprint fields are tiny:
   rebased counters, rename ids, site ids, partition masks).  The escape
   byte 0xff introduces a fixed eight-byte little-endian tail, so decoding
   never needs look-ahead and no separator bytes are required — callers
   length-prefix variable-length sections instead. *)

let add_int buf n =
  let z = (n lsl 1) lxor (n asr 62) in
  if z >= 0 && z < 255 then Buffer.add_char buf (Char.unsafe_chr z)
  else begin
    Buffer.add_char buf '\255';
    for i = 0 to 7 do
      Buffer.add_char buf (Char.unsafe_chr ((z lsr (8 * i)) land 0xff))
    done
  end
