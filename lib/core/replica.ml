(* Per-copy consistency-control state (paper §2.1): an operation number
   incremented by every successful operation the copy took part in, a
   version number identifying the last write it received, and the partition
   set — the set of sites that participated in the copy's most recent
   successful operation. *)

type t = {
  op_no : int;
  version : int;
  partition : Site_set.t;
}

let initial universe = { op_no = 1; version = 1; partition = universe }

let make ~op_no ~version ~partition =
  if op_no < 0 then invalid_arg "Replica.make: negative operation number";
  if version < 0 then invalid_arg "Replica.make: negative version number";
  { op_no; version; partition }

let op_no t = t.op_no
let version t = t.version
let partition t = t.partition

let with_commit t ~op_no ~version ~partition = ignore t; { op_no; version; partition }

let equal a b =
  a.op_no = b.op_no && a.version = b.version && Site_set.equal a.partition b.partition

let pp ppf t =
  Fmt.pf ppf "o=%d v=%d P=%a" t.op_no t.version Site_set.pp t.partition

let pp_names names ppf t =
  Fmt.pf ppf "o=%d v=%d P=%a" t.op_no t.version (Site_set.pp_names names) t.partition
