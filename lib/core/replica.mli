(** Per-copy consistency-control state (operation number, version number,
    partition set) — the ensemble the dynamic voting algorithms maintain at
    every physical copy (paper §2.1). *)

type t = {
  op_no : int;      (** incremented at every successful operation *)
  version : int;    (** identifies the last successful write *)
  partition : Site_set.t;
      (** sites that participated in the most recent successful operation *)
}

val initial : Site_set.t -> t
(** [initial universe] is the state every copy starts in: o = v = 1 and the
    partition set containing all copies, as in the paper's walkthrough. *)

val make : op_no:int -> version:int -> partition:Site_set.t -> t
(** @raise Invalid_argument on negative counters. *)

val op_no : t -> int
val version : t -> int
val partition : t -> Site_set.t

val with_commit : t -> op_no:int -> version:int -> partition:Site_set.t -> t
(** The state a COMMIT installs. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val pp_names : string array -> Format.formatter -> t -> unit
