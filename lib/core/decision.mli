(** The majority-partition test (Algorithm 1 of the paper), covering plain,
    lexicographic and topological dynamic voting.

    Pure decision logic: given the live, mutually communicating copies and
    their state ensembles, decide whether they constitute the majority
    partition.  State changes on success are applied by {!Operation}. *)

type flavor = {
  tie_break : bool;
      (** resolve exact halves via the lexicographic site ordering *)
  topological : bool;
      (** claim votes of unavailable previous-quorum members that share a
          network segment with a live reachable member (paper §3) *)
  safe_claims : bool;
      (** require the freshness condition for vote claiming and the
          topological tie-break.  [false] reproduces the paper's Figures
          5–7 literally; that variant admits sequential split-brain
          histories (a stale restarted site claiming its dead segment-
          mates), demonstrated in the test suite. *)
}

val dv_flavor : flavor
(** Plain Dynamic Voting (Davcev–Burkhard): no tie-break, no topology. *)

val ldv_flavor : flavor
(** Lexicographic Dynamic Voting (Jajodia) — also the decision rule of
    Optimistic Dynamic Voting. *)

val tdv_flavor : flavor
(** Topological Dynamic Voting exactly as published (and its optimistic
    variant) — reproduces the paper's Table 2, but see {!tdv_safe_flavor}. *)

val tdv_safe_flavor : flavor
(** Topological Dynamic Voting with the freshness correction: a site may
    sponsor claims of dead same-segment quorum members only while it has
    been continuously up since its last commit, and the even-split
    tie-break requires the maximum element to be unclaimable or fresh.
    Slightly less available than {!tdv_flavor}, but safe under every
    failure/restart history. *)

type denial =
  | No_reachable_copy
  | Below_majority of { have : int; quorum_size : int }
  | Tie_lost of { max_element : Site_set.site }
  | Tie_unbroken
  | Rival_possible of { rivals : Site_set.t }
      (** safe topological flavor only: the unreachable quorum members —
          not silenced by a fresh same-segment witness — could themselves
          have continued the file via vote claiming; granting now could
          create a second lineage, so the group must wait (the
          available-copy "last to fail, first to recover" discipline,
          derived rather than assumed) *)

type grant = {
  q : Site_set.t;      (** Q — sites with the maximal operation number *)
  s : Site_set.t;      (** S — sites with the maximal version number *)
  m : Site_set.site;   (** chosen representative of Q *)
  p_m : Site_set.t;    (** the previous majority partition (m's partition set) *)
  claimed : Site_set.t;
      (** T — the vote set actually counted (equals [q] unless
          topological) *)
}

type verdict = Granted of grant | Denied of denial

val is_granted : verdict -> bool

val evaluate :
  flavor ->
  ordering:Ordering.t ->
  segment_of:(Site_set.site -> int) ->
  ?fresh:Site_set.t ->
  states:Replica.t array ->
  reachable:Site_set.t ->
  unit ->
  verdict
(** [evaluate flavor ~ordering ~segment_of ~states ~reachable ()] runs
    Algorithm 1 for the component [reachable] (the set R of live copies
    that can communicate with the requester).  [states] must be valid for
    every member of [reachable]; [segment_of] is consulted only when
    [flavor.topological].

    [fresh] (default: [reachable]) is the set of sites continuously up
    since their last commit.  It gates topological vote claiming: only a
    fresh site can sponsor the votes of dead same-segment quorum members.
    The paper's figures omit this condition; without it a stale restarted
    site could resurrect the file with old data (see the implementation
    comment for the counterexample).  Callers that track site uptime
    should always pass it. *)

val pp_denial : Format.formatter -> denial -> unit
val pp_verdict : Format.formatter -> verdict -> unit
