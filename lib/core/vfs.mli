(** The storage seam: every byte the system persists flows through one
    of these five operations, so a fault-injecting implementation (the
    [Dynvote_faultfs] library) can strike any of them — EIO, ENOSPC,
    short writes, fsyncs that fail or silently lie, renames lost at the
    directory — without the persistence code knowing it is under test.

    The default {!real} implementation is the plain POSIX calls the
    codec always used; threading a vfs is free when nobody injects. *)

exception Fault of { op : string; path : string; reason : string }
(** An injected (or genuine, if an implementation chooses to surface it
    this way) storage failure.  Distinct from [Unix_error]/[Sys_error]
    so a node can tell "my disk is failing" from a programming error and
    fence itself instead of dying silently. *)

exception Crash_point of { op : string; path : string }
(** Raised by a fault plan that simulates the whole process dying at
    this exact storage operation; the node thread converts it to its
    kill exception so the unwind is indistinguishable from a crash. *)

type file = {
  write : Bytes.t -> int -> int -> int;
      (** [write buf off len] — may write fewer bytes (callers loop),
          raise {!Fault} or [Unix_error] *)
  fsync : unit -> unit;
  close : unit -> unit;
}
(** An open writable file, as three closures — the implementation owns
    the descriptor. *)

type t = {
  create : string -> file;  (** open for writing, truncating (0o644) *)
  append : string -> file;  (** open for appending, creating (0o644) *)
  rename : src:string -> dst:string -> unit;
  fsync_dir : string -> unit;
      (** make a preceding rename in this directory durable;
          best-effort on filesystems that refuse directory fsync *)
  read : string -> string;  (** whole file; raises [Sys_error] *)
  truncate : string -> int -> unit;
      (** cut a file to a byte length — log-recovery hygiene (dropping a
          torn tail before appending over it), deliberately not a fault
          target *)
}

val real : t
(** The POSIX filesystem. *)
