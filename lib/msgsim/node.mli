(** A participating site: consistency ensemble, file data, and the message
    handler that serves the wire protocol. *)

type t

val create : site:Site_set.site -> universe:Site_set.t -> initial_content:string -> t

val site : t -> Site_set.site

val locked_by : t -> int option
(** The operation currently holding this site's volatile lock. *)

val clear_lock : t -> unit
(** Drop the volatile lock (a crash does this implicitly). *)

val try_lock : t -> op:int -> bool
(** Acquire the volatile lock for operation [op]; idempotent for the
    holder, refused while another operation holds it. *)

val replica : t -> Replica.t
val content : t -> string
val data_version : t -> int

val set_collector : t -> (Message.t -> unit) -> unit
(** Route incoming replies to an in-flight coordinator. *)

val clear_collector : t -> unit

val install_data : t -> version:int -> content:string -> unit
(** Adopt newer data (ignored if not newer). *)

val write_local : t -> version:int -> content:string -> unit

val install_commit : t -> op_no:int -> version:int -> partition:Site_set.t -> unit
(** Monotone: ignored unless [op_no] exceeds the copy's current operation
    number, so stale or duplicated commits cannot regress state. *)

val handler : t -> Transport.t -> Message.t -> unit
(** The node's protocol automaton, to be registered with the transport. *)
