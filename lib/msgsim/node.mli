(** A participating site: consistency ensemble, file data, and the message
    handler that serves the wire protocol.

    The ensemble is persisted through {!Dynvote.Codec} on every commit.  A
    crash-restart reloads it; a corrupt stable record leaves the site
    {e amnesiac} — silent to state requests until a successful RECOVER. *)

type t

val create : site:Site_set.site -> universe:Site_set.t -> initial_content:string -> t

val site : t -> Site_set.site

val locked_by : t -> int option
(** The operation currently holding this site's volatile lock. *)

val clear_lock : t -> unit
(** Drop the volatile lock (a crash does this implicitly). *)

val try_lock : t -> op:int -> bool
(** Acquire the volatile lock for operation [op]; idempotent for the
    holder, refused while another operation holds it. *)

val replica : t -> Replica.t
val content : t -> string
val data_version : t -> int

val is_amnesiac : t -> bool
(** True after a restart from a corrupt stable record: the site holds no
    trustworthy ensemble and does not answer state requests. *)

val set_collector : t -> (Message.t -> unit) -> unit
(** Route incoming replies to an in-flight coordinator. *)

val clear_collector : t -> unit

val set_fetch_round : t -> int option -> unit
(** While set, the [Data] reply carrying this round id force-installs
    (overwriting even an equal-or-newer local version — the local copy
    may be uncommitted residue); stray data falls back to the monotone
    path. *)

val set_commit_witness : t -> (Site_set.site -> Replica.t -> unit) -> unit
(** Observe every commit this node applies (safety-oracle hook). *)

val clear_commit_witness : t -> unit

val stable_record : t -> string
(** The Codec-encoded ensemble as last persisted. *)

val set_stable_record : t -> string -> unit
(** Overwrite the stable record — the chaos harness's torn-write /
    bit-rot injection point. *)

val reload_from_stable : t -> (unit, string) result
(** Crash-restart: drop volatile state and reload the ensemble from the
    stable record.  [Error reason] marks the site amnesiac. *)

val install_data : t -> version:int -> content:string -> unit
(** Adopt newer data (ignored if not newer). *)

val write_local : t -> version:int -> content:string -> unit

val install_commit :
  t -> op_no:int -> version:int -> partition:Site_set.t -> ?data:string -> unit -> unit
(** Monotone: ignored unless [op_no] exceeds the copy's current operation
    number, so stale or duplicated commits cannot regress state.  Applied
    commits are persisted to the stable record and clear amnesia; [data]
    (piggybacked write content) installs atomically with the ensemble. *)

val handler : t -> Transport.t -> Message.t -> unit
(** The node's protocol automaton, to be registered with the transport. *)

type snapshot
(** An immutable copy of the node's inter-operation state: ensemble, data,
    stable record, amnesia flag and the volatile lock. *)

val snapshot : t -> snapshot

val restore : t -> snapshot -> unit
(** Reinstate a snapshot.  The collector and fetch round — meaningful only
    inside an in-flight operation — are reset, so restoring while an
    operation is running is not supported. *)
