(* Wire messages of the voting protocols.  START is a state request plus
   its reply; COMMIT installs a new consistency ensemble; recovery adds a
   data transfer.  Payload sizes are nominal byte counts used by the
   overhead accounting (consistency-control state is tiny; data transfers
   dominate, which is why the paper treats "message traffic" as message
   counts).

   State requests and replies carry a round identifier so that, under
   relaxed delivery (delay, duplication, retries), a coordinator can tell
   a reply to the current gather apart from a straggler of an earlier one.
   Commits need no round: they are applied monotonically by operation
   number.  Data transfers are monotone on the version number. *)

type payload =
  | State_request of { round : int }       (* START: who is there, send your ensemble *)
  | State_reply of { round : int; replica : Replica.t }  (* the (o, v, P) ensemble *)
  | Commit of {
      op_no : int;
      version : int;
      partition : Site_set.t;
      data : string option;
          (* relaxed-delivery writes piggyback the content so data and
             ensemble install atomically; None under the paper model *)
    }
  | Data_request of { round : int }        (* recovering site asks for the file *)
  | Data of { round : int; version : int; content : string }
  | Ack
  (* Operation serialization: the paper's algorithms assume one operation
     at a time; these messages provide it.  Locks are volatile (lost on a
     crash) and all-or-nothing (a coordinator that fails to lock every
     reachable site releases and aborts), so no deadlock can form. *)
  | Lock_request of { op : int }
  | Lock_reply of { op : int; granted : bool }
  | Unlock of { op : int }

type t = {
  src : Site_set.site;
  dst : Site_set.site;
  payload : payload;
}

let kind_name = function
  | State_request _ -> "state_request"
  | State_reply _ -> "state_reply"
  | Commit _ -> "commit"
  | Data_request _ -> "data_request"
  | Data _ -> "data"
  | Ack -> "ack"
  | Lock_request _ -> "lock_request"
  | Lock_reply _ -> "lock_reply"
  | Unlock _ -> "unlock"

let nominal_size = function
  | State_request _ -> 16
  | State_reply _ -> 48
  | Commit { data = None; _ } -> 48
  | Commit { data = Some content; _ } -> 64 + String.length content
  | Data_request _ -> 16
  | Data { content; _ } -> 64 + String.length content
  | Ack -> 16
  | Lock_request _ | Lock_reply _ | Unlock _ -> 24

let pp ppf t =
  Fmt.pf ppf "%d -> %d: %s" t.src t.dst (kind_name t.payload)
