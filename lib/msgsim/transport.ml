(* Asynchronous message delivery over the simulated network.  Messages
   between connected sites arrive after a per-pair latency, in timestamp
   order (FIFO per channel follows from the deterministic event queue);
   messages to unreachable sites are silently dropped — exactly the
   paper's failure model, where "no answer" is how a site learns that a
   peer is down or partitioned away. *)

type stats = {
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable bytes : int;
  by_kind : (string, int) Hashtbl.t;
}

type t = {
  engine : Message.t Dynvote_des.Engine.t;
  latency : Site_set.site -> Site_set.site -> float;
  mutable connected : Site_set.site -> Site_set.site -> bool;
  mutable fault : Message.t -> bool; (* true = drop this message *)
  handlers : (Site_set.site, t -> Message.t -> unit) Hashtbl.t;
  stats : stats;
}

let create ?(latency = fun _ _ -> 0.001) ?(connected = fun _ _ -> true) () =
  {
    engine = Dynvote_des.Engine.create ();
    latency;
    connected;
    fault = (fun _ -> false);
    handlers = Hashtbl.create 16;
    stats = { sent = 0; delivered = 0; dropped = 0; bytes = 0; by_kind = Hashtbl.create 8 };
  }

let set_connectivity t connected = t.connected <- connected

(* Fault injection for tests: messages matching the predicate vanish (and
   are counted as dropped). *)
let set_fault t fault = t.fault <- fault
let clear_fault t = t.fault <- (fun _ -> false)

let register t site handler = Hashtbl.replace t.handlers site handler

let now t = Dynvote_des.Engine.now t.engine

let count_kind t payload =
  let kind = Message.kind_name payload in
  Hashtbl.replace t.stats.by_kind kind
    (1 + Option.value (Hashtbl.find_opt t.stats.by_kind kind) ~default:0)

let send t ~src ~dst payload =
  let message = { Message.src; dst; payload } in
  t.stats.sent <- t.stats.sent + 1;
  t.stats.bytes <- t.stats.bytes + Message.nominal_size payload;
  count_kind t payload;
  if t.fault message then t.stats.dropped <- t.stats.dropped + 1
  else if t.connected src dst then
    Dynvote_des.Engine.schedule_after t.engine ~delay:(t.latency src dst) message
  else t.stats.dropped <- t.stats.dropped + 1

let broadcast t ~src ~targets payload =
  Site_set.iter (fun dst -> if dst <> src then send t ~src ~dst payload) targets

(* Deliver every in-flight message (and those they trigger) in timestamp
   order.  Connectivity is rechecked at delivery time, so a partition that
   forms mid-flight loses the affected messages. *)
let run_until_quiet t =
  let handler _engine _time message =
    if t.connected message.Message.src message.Message.dst then begin
      t.stats.delivered <- t.stats.delivered + 1;
      match Hashtbl.find_opt t.handlers message.Message.dst with
      | Some f -> f t message
      | None -> ()
    end
    else t.stats.dropped <- t.stats.dropped + 1
  in
  let rec drain () =
    match Dynvote_des.Engine.step t.engine ~handler with
    | Some _ -> drain ()
    | None -> ()
  in
  drain ()

let stats t = t.stats

let messages_sent t = t.stats.sent
let messages_delivered t = t.stats.delivered
let messages_dropped t = t.stats.dropped
let bytes_sent t = t.stats.bytes

let kind_count t kind = Option.value (Hashtbl.find_opt t.stats.by_kind kind) ~default:0

let reset_stats t =
  t.stats.sent <- 0;
  t.stats.delivered <- 0;
  t.stats.dropped <- 0;
  t.stats.bytes <- 0;
  Hashtbl.reset t.stats.by_kind
