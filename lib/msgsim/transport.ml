(* Asynchronous message delivery over the simulated network.  Messages
   between connected sites arrive after a per-pair latency, in timestamp
   order (FIFO per channel follows from the deterministic event queue);
   messages to unreachable sites are silently dropped — exactly the
   paper's failure model, where "no answer" is how a site learns that a
   peer is down or partitioned away.

   On top of that friendly baseline sits an adversarial layer: a
   composable *fault plan* consulted on every send.  A plan may lose the
   message (per-link Bernoulli loss or a scheduled link flap), duplicate
   it, or add bounded extra delay (which reorders it past later traffic).
   Each injected fault is accounted separately from partition loss, so a
   chaos run can tell "the network ate it" apart from "the partition ate
   it". *)

module Metrics = Dynvote_obs.Metrics
module Trace = Dynvote_obs.Trace
module Hub = Dynvote_obs.Hub

type fault =
  | Loss        (* Bernoulli per-link loss *)
  | Flap        (* scheduled link outage window *)
  | Duplicate   (* extra copy injected *)
  | Delay       (* bounded extra latency (reordering) *)

let fault_name = function
  | Loss -> "loss"
  | Flap -> "flap"
  | Duplicate -> "duplicate"
  | Delay -> "delay"

type verdict =
  | Pass
  | Drop_it of fault          (* Loss or Flap *)
  | Deliver_copies of float list
      (* extra delay per delivered copy; [0.] is a normal delivery,
         [0.; 0.] a duplicate, [d] a delayed message *)

type plan = now:float -> Message.t -> verdict

type stats = {
  mutable sent : int;
  mutable delivered : int;
  mutable dropped_partition : int;  (* destination unreachable *)
  mutable dropped_fault : int;      (* eaten by the fault plan *)
  mutable duplicated : int;         (* extra copies injected *)
  mutable delayed : int;            (* copies given extra latency *)
  mutable flapped : int;            (* share of dropped_fault due to flaps *)
  mutable bytes : int;
  by_kind : (string, int) Hashtbl.t;
}

type t = {
  engine : Message.t Dynvote_des.Engine.t;
  latency : Site_set.site -> Site_set.site -> float;
  mutable connected : Site_set.site -> Site_set.site -> bool;
  mutable plan : plan;
  handlers : (Site_set.site, t -> Message.t -> unit) Hashtbl.t;
  stats : stats;
  (* Observability mirrors the live switchboard's vocabulary: same
     counter names, same trace events, a different network underneath. *)
  mutable obs : Hub.t;
  mutable o_sent : Metrics.counter;
  mutable o_delivered : Metrics.counter;
  mutable o_dropped : Metrics.counter;
}

let no_plan : plan = fun ~now:_ _ -> Pass

let create ?(latency = fun _ _ -> 0.001) ?(connected = fun _ _ -> true) () =
  {
    engine = Dynvote_des.Engine.create ();
    latency;
    connected;
    plan = no_plan;
    handlers = Hashtbl.create 16;
    obs = Hub.noop;
    o_sent = Metrics.counter Metrics.noop "net.frames.sent";
    o_delivered = Metrics.counter Metrics.noop "net.frames.delivered";
    o_dropped = Metrics.counter Metrics.noop "net.frames.dropped";
    stats =
      {
        sent = 0;
        delivered = 0;
        dropped_partition = 0;
        dropped_fault = 0;
        duplicated = 0;
        delayed = 0;
        flapped = 0;
        bytes = 0;
        by_kind = Hashtbl.create 8;
      };
  }

let set_connectivity t connected = t.connected <- connected

let set_obs t obs =
  t.obs <- obs;
  t.o_sent <- Metrics.counter obs.Hub.metrics "net.frames.sent";
  t.o_delivered <- Metrics.counter obs.Hub.metrics "net.frames.delivered";
  t.o_dropped <- Metrics.counter obs.Hub.metrics "net.frames.dropped"

let set_plan t plan = t.plan <- plan
let clear_plan t = t.plan <- no_plan

(* The seed interface — a single drop predicate — is kept as sugar over
   the plan: matching messages are lost. *)
let set_fault t fault =
  t.plan <- (fun ~now:_ message -> if fault message then Drop_it Loss else Pass)

let clear_fault = clear_plan

let register t site handler = Hashtbl.replace t.handlers site handler

let now t = Dynvote_des.Engine.now t.engine

let in_flight t = Dynvote_des.Engine.pending t.engine

let count_kind t payload =
  let kind = Message.kind_name payload in
  Hashtbl.replace t.stats.by_kind kind
    (1 + Option.value (Hashtbl.find_opt t.stats.by_kind kind) ~default:0)

let drop_frame t (message : Message.t) reason =
  Metrics.incr t.o_dropped;
  Hub.event t.obs
    (Trace.Frame_dropped
       {
         src = message.Message.src;
         dst = message.Message.dst;
         reason = reason ^ " " ^ Message.kind_name message.Message.payload;
       })

let send t ~src ~dst payload =
  let message = { Message.src; dst; payload } in
  t.stats.sent <- t.stats.sent + 1;
  t.stats.bytes <- t.stats.bytes + Message.nominal_size payload;
  count_kind t payload;
  Metrics.incr t.o_sent;
  Hub.event t.obs
    (Trace.Frame_sent { src; dst; kind = Message.kind_name payload });
  if not (t.connected src dst) then begin
    t.stats.dropped_partition <- t.stats.dropped_partition + 1;
    drop_frame t message "partition:"
  end
  else
    match t.plan ~now:(now t) message with
    | Pass ->
        Dynvote_des.Engine.schedule_after t.engine ~delay:(t.latency src dst) message
    | Drop_it fault ->
        t.stats.dropped_fault <- t.stats.dropped_fault + 1;
        if fault = Flap then t.stats.flapped <- t.stats.flapped + 1;
        drop_frame t message (fault_name fault ^ ":")
    | Deliver_copies [] ->
        (* A plan may also express loss as zero deliveries. *)
        t.stats.dropped_fault <- t.stats.dropped_fault + 1;
        drop_frame t message "loss:"
    | Deliver_copies extras ->
        let base = t.latency src dst in
        List.iteri
          (fun i extra ->
            if i > 0 then t.stats.duplicated <- t.stats.duplicated + 1;
            if extra > 0.0 then t.stats.delayed <- t.stats.delayed + 1;
            Dynvote_des.Engine.schedule_after t.engine ~delay:(base +. extra) message)
          extras

let broadcast t ~src ~targets payload =
  Site_set.iter (fun dst -> if dst <> src then send t ~src ~dst payload) targets

let deliver t message =
  if t.connected message.Message.src message.Message.dst then begin
    t.stats.delivered <- t.stats.delivered + 1;
    Metrics.incr t.o_delivered;
    Hub.event t.obs
      (Trace.Frame_recv
         {
           src = message.Message.src;
           dst = message.Message.dst;
           kind = Message.kind_name message.Message.payload;
         });
    match Hashtbl.find_opt t.handlers message.Message.dst with
    | Some f -> f t message
    | None -> ()
  end
  else begin
    t.stats.dropped_partition <- t.stats.dropped_partition + 1;
    drop_frame t message "partition:"
  end

(* Deliver every in-flight message (and those they trigger) in timestamp
   order.  Connectivity is rechecked at delivery time, so a partition that
   forms mid-flight loses the affected messages. *)
let run_until_quiet t =
  let handler _engine _time message = deliver t message in
  let rec drain () =
    match Dynvote_des.Engine.step t.engine ~handler with
    | Some _ -> drain ()
    | None -> ()
  in
  drain ()

(* Deliver only what arrives within the next [timeout] simulated seconds
   and advance the clock to the deadline.  Later messages stay in flight:
   they may arrive during a subsequent round (stale — the protocol must
   tolerate them) or never be waited for again. *)
let run_for t ~timeout =
  if timeout < 0.0 then invalid_arg "Transport.run_for: negative timeout";
  let deadline = now t +. timeout in
  Dynvote_des.Engine.run t.engine ~until:deadline ~handler:(fun _engine _time message ->
      deliver t message)

let stats t = t.stats

let messages_sent t = t.stats.sent
let messages_delivered t = t.stats.delivered
let messages_dropped t = t.stats.dropped_partition + t.stats.dropped_fault
let messages_dropped_partition t = t.stats.dropped_partition
let messages_dropped_fault t = t.stats.dropped_fault
let bytes_sent t = t.stats.bytes

let kind_count t kind = Option.value (Hashtbl.find_opt t.stats.by_kind kind) ~default:0

let fault_count t fault =
  match fault with
  | Loss -> t.stats.dropped_fault - t.stats.flapped
  | Flap -> t.stats.flapped
  | Duplicate -> t.stats.duplicated
  | Delay -> t.stats.delayed

let reset_stats t =
  t.stats.sent <- 0;
  t.stats.delivered <- 0;
  t.stats.dropped_partition <- 0;
  t.stats.dropped_fault <- 0;
  t.stats.duplicated <- 0;
  t.stats.delayed <- 0;
  t.stats.flapped <- 0;
  t.stats.bytes <- 0;
  Hashtbl.reset t.stats.by_kind
