(* A site participating in the replicated file: its consistency-control
   ensemble, the file data itself, and the message handler that serves
   state requests, installs commits and answers data transfers.  All state
   changes at remote sites happen through messages — the point of this
   library is to validate that the wire protocol reproduces the pure
   state-transition semantics of {!Dynvote.Operation}. *)

type t = {
  site : Site_set.site;
  mutable replica : Replica.t;
  mutable data_version : int;
  mutable content : string;
  (* When an operation coordinated at this site is in flight, replies are
     routed to this collector instead of the normal handler. *)
  mutable collector : (Message.t -> unit) option;
  (* Volatile operation lock: cleared by a crash, never persisted. *)
  mutable lock : int option;
}

let create ~site ~universe ~initial_content =
  {
    site;
    replica = Replica.initial universe;
    data_version = 1;
    content = initial_content;
    collector = None;
    lock = None;
  }

let site t = t.site

let locked_by t = t.lock

let clear_lock t = t.lock <- None

(* Grant the volatile lock to [op] if free (or already held by [op]). *)
let try_lock t ~op =
  match t.lock with
  | None ->
      t.lock <- Some op;
      true
  | Some holder -> holder = op
let replica t = t.replica
let content t = t.content
let data_version t = t.data_version

let set_collector t f = t.collector <- Some f
let clear_collector t = t.collector <- None

let install_data t ~version ~content =
  if version > t.data_version then begin
    t.data_version <- version;
    t.content <- content
  end

let write_local t ~version ~content =
  t.data_version <- version;
  t.content <- content

(* Commits are applied monotonically: a delayed, duplicated or otherwise
   stale COMMIT (operation number not beyond the current one) is ignored,
   so out-of-order delivery can never regress a copy's state. *)
let install_commit t ~op_no ~version ~partition =
  if op_no > Replica.op_no t.replica then
    t.replica <- Replica.with_commit t.replica ~op_no ~version ~partition

let handler t transport message =
  match message.Message.payload with
  | Message.State_request ->
      Transport.send transport ~src:t.site ~dst:message.Message.src
        (Message.State_reply t.replica)
  | Message.Commit { op_no; version; partition } ->
      install_commit t ~op_no ~version ~partition
  | Message.Data_request ->
      Transport.send transport ~src:t.site ~dst:message.Message.src
        (Message.Data { version = t.data_version; content = t.content })
  | Message.Data { version; content } -> install_data t ~version ~content
  | Message.Lock_request { op } ->
      Transport.send transport ~src:t.site ~dst:message.Message.src
        (Message.Lock_reply { op; granted = try_lock t ~op })
  | Message.Unlock { op } -> if t.lock = Some op then t.lock <- None
  | Message.State_reply _ | Message.Lock_reply _ | Message.Ack -> (
      (* Replies are only meaningful to an in-flight coordinator. *)
      match t.collector with Some f -> f message | None -> ())
