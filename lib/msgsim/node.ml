(* A site participating in the replicated file: its consistency-control
   ensemble, the file data itself, and the message handler that serves
   state requests, installs commits and answers data transfers.  All state
   changes at remote sites happen through messages — the point of this
   library is to validate that the wire protocol reproduces the pure
   state-transition semantics of {!Dynvote.Operation}.

   The ensemble is persisted through the {!Dynvote.Codec} stable-storage
   path on every commit, mirroring the paper's requirement that (o, v, P)
   survive crashes.  A crash-restart reloads it from the stable record; a
   torn or corrupted record (injectable by the chaos harness) leaves the
   site *amnesiac* — it remembers nothing it can safely vote with, so it
   stays silent to state requests until a successful RECOVER, sponsored by
   sites that do remember, reinstates it. *)

type t = {
  site : Site_set.site;
  universe : Site_set.t;
  mutable replica : Replica.t;
  mutable data_version : int;
  mutable content : string;
  (* Stable storage: the Codec-encoded ensemble, rewritten on every
     commit.  Chaos can corrupt it to model torn writes. *)
  mutable stable : string;
  mutable amnesiac : bool;
  (* When an operation coordinated at this site is in flight, replies are
     routed to this collector instead of the normal handler. *)
  mutable collector : (Message.t -> unit) option;
  (* Volatile operation lock: cleared by a crash, never persisted. *)
  mutable lock : int option;
  (* While a verified data fetch is in flight, the Data reply carrying
     this round id force-installs: the local copy may be the residue of
     an uncommitted write, so its version number proves nothing. *)
  mutable fetch_round : int option;
  (* Safety-oracle witness: observes every applied commit. *)
  mutable on_commit : (Site_set.site -> Replica.t -> unit) option;
}

let create ~site ~universe ~initial_content =
  let replica = Replica.initial universe in
  {
    site;
    universe;
    replica;
    data_version = 1;
    content = initial_content;
    stable = Codec.encode_replica replica;
    amnesiac = false;
    collector = None;
    lock = None;
    fetch_round = None;
    on_commit = None;
  }

let site t = t.site

let locked_by t = t.lock

let clear_lock t = t.lock <- None

(* Grant the volatile lock to [op] if free (or already held by [op]). *)
let try_lock t ~op =
  match t.lock with
  | None ->
      t.lock <- Some op;
      true
  | Some holder -> holder = op
let replica t = t.replica
let content t = t.content
let data_version t = t.data_version
let is_amnesiac t = t.amnesiac

let set_collector t f = t.collector <- Some f
let clear_collector t = t.collector <- None

let set_fetch_round t round = t.fetch_round <- round

let set_commit_witness t f = t.on_commit <- Some f
let clear_commit_witness t = t.on_commit <- None

let stable_record t = t.stable
let set_stable_record t record = t.stable <- record

(* A crash loses all volatile state; the ensemble survives only as the
   stable record.  Reloading goes through the codec: a clean record
   restores the ensemble, a corrupt one (torn write, bit rot) leaves the
   site amnesiac — it must RECOVER before it may vote again. *)
let reload_from_stable t =
  t.collector <- None;
  t.lock <- None;
  t.fetch_round <- None;
  match Codec.decode_result t.stable with
  | Ok replica ->
      t.replica <- replica;
      t.amnesiac <- false;
      Ok ()
  | Error reason ->
      t.amnesiac <- true;
      Error reason

let install_data t ~version ~content =
  if version > t.data_version then begin
    t.data_version <- version;
    t.content <- content
  end

let write_local t ~version ~content =
  t.data_version <- version;
  t.content <- content

(* Commits are applied monotonically: a delayed, duplicated or otherwise
   stale COMMIT (operation number not beyond the current one) is ignored,
   so out-of-order delivery can never regress a copy's state.  Every
   applied commit is persisted before it is acknowledged to the oracle —
   a freshly committed ensemble is never held only in memory.  A commit
   carrying piggybacked data installs content and ensemble atomically. *)
let install_commit t ~op_no ~version ~partition ?data () =
  if op_no > Replica.op_no t.replica then begin
    t.replica <- Replica.with_commit t.replica ~op_no ~version ~partition;
    t.stable <- Codec.encode_replica t.replica;
    t.amnesiac <- false;
    (match data with
    | Some content ->
        t.data_version <- version;
        t.content <- content
    | None -> ());
    match t.on_commit with Some f -> f t.site t.replica | None -> ()
  end

(* Snapshots capture everything that persists between operations: the
   ensemble, the data, the stable record, amnesia, and the volatile lock
   (which a crashed coordinator can leave held at its participants).  The
   collector and fetch round are strictly intra-operation state and are a
   quiescent [None]; restore resets them rather than saving them. *)
type snapshot = {
  snap_replica : Replica.t;
  snap_data_version : int;
  snap_content : string;
  snap_stable : string;
  snap_amnesiac : bool;
  snap_lock : int option;
}

let snapshot t =
  {
    snap_replica = t.replica;
    snap_data_version = t.data_version;
    snap_content = t.content;
    snap_stable = t.stable;
    snap_amnesiac = t.amnesiac;
    snap_lock = t.lock;
  }

let restore t s =
  t.replica <- s.snap_replica;
  t.data_version <- s.snap_data_version;
  t.content <- s.snap_content;
  t.stable <- s.snap_stable;
  t.amnesiac <- s.snap_amnesiac;
  t.lock <- s.snap_lock;
  t.collector <- None;
  t.fetch_round <- None

let handler t transport message =
  match message.Message.payload with
  | Message.State_request { round } ->
      (* An amnesiac site cannot answer: its record is gone and a guessed
         ensemble could be counted as a vote.  Silence is safe — to the
         coordinator it looks exactly like a down site. *)
      if not t.amnesiac then
        Transport.send transport ~src:t.site ~dst:message.Message.src
          (Message.State_reply { round; replica = t.replica })
  | Message.Commit { op_no; version; partition; data } ->
      install_commit t ~op_no ~version ~partition ?data ()
  | Message.Data_request { round } ->
      Transport.send transport ~src:t.site ~dst:message.Message.src
        (Message.Data { round; version = t.data_version; content = t.content })
  | Message.Data { round; version; content } ->
      if t.fetch_round = Some round then write_local t ~version ~content
      else install_data t ~version ~content
  | Message.Lock_request { op } ->
      Transport.send transport ~src:t.site ~dst:message.Message.src
        (Message.Lock_reply { op; granted = try_lock t ~op })
  | Message.Unlock { op } -> if t.lock = Some op then t.lock <- None
  | Message.State_reply _ | Message.Lock_reply _ | Message.Ack -> (
      (* Replies are only meaningful to an in-flight coordinator. *)
      match t.collector with Some f -> f message | None -> ())
