(** Wire messages of the voting protocols.

    State requests and replies are tagged with the coordinator's gather
    round, so stale replies delivered late (delay, duplication, retry) can
    be discarded.  Commits and data transfers are applied monotonically
    and need no round. *)

type payload =
  | State_request of { round : int }
  | State_reply of { round : int; replica : Replica.t }
  | Commit of {
      op_no : int;
      version : int;
      partition : Site_set.t;
      data : string option;
          (** relaxed-delivery writes piggyback the content so data and
              ensemble install atomically; [None] under the paper model *)
    }
  | Data_request of { round : int }
  | Data of { round : int; version : int; content : string }
  | Ack
  | Lock_request of { op : int }
      (** serialize operations: volatile, all-or-nothing locks *)
  | Lock_reply of { op : int; granted : bool }
  | Unlock of { op : int }

type t = {
  src : Site_set.site;
  dst : Site_set.site;
  payload : payload;
}

val kind_name : payload -> string
val nominal_size : payload -> int
(** Nominal bytes on the wire, for traffic accounting. *)

val pp : Format.formatter -> t -> unit
