(** Wire messages of the voting protocols. *)

type payload =
  | State_request
  | State_reply of Replica.t
  | Commit of { op_no : int; version : int; partition : Site_set.t }
  | Data_request
  | Data of { version : int; content : string }
  | Ack
  | Lock_request of { op : int }
      (** serialize operations: volatile, all-or-nothing locks *)
  | Lock_reply of { op : int; granted : bool }
  | Unlock of { op : int }

type t = {
  src : Site_set.site;
  dst : Site_set.site;
  payload : payload;
}

val kind_name : payload -> string
val nominal_size : payload -> int
(** Nominal bytes on the wire, for traffic accounting. *)

val pp : Format.formatter -> t -> unit
