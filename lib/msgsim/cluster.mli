(** A replicated file driven over real (simulated) message exchanges.

    Implements READ / WRITE / RECOVER (Figures 1–3, or 5–7 with a
    topological flavor) as broadcast-gather-decide-commit message rounds,
    with per-operation traffic accounting.

    Under the default {!Quiet} delivery model, operations are atomic with
    respect to topology changes, per the paper's delivery assumptions.
    Under {!Deadline}, the coordinator instead runs with real timeouts
    and bounded retry/backoff, verifies data transfers, piggybacks write
    content on COMMIT (atomic data+ensemble install) and aborts rather
    than hangs when the network loses its traffic — the hardened protocol
    the chaos harness exercises.  Crash-recovery always reloads the
    ensemble through the {!Dynvote.Codec} stable-storage path. *)

type t

type delivery =
  | Quiet
      (** the paper's model: reliable in-order delivery within the
          current partition; the coordinator waits until the network
          goes quiet *)
  | Deadline of { timeout : float; retries : int; backoff : float }
      (** relaxed delivery: wait [timeout] (simulated seconds) per
          round, re-ask silent sites up to [retries] times with
          [backoff]-scaled patience ([>= 1.0]), then proceed with
          whatever answered *)

type chaos_event =
  | After_decide of { coordinator : Site_set.site; granted : bool }
      (** the majority-partition test just ran, nothing distributed yet *)
  | After_commit_send of {
      coordinator : Site_set.site;
      recipient : Site_set.site;
      sent : int;
      total : int;
    }  (** a COMMIT just left for [recipient] ([sent] of [total]) *)

type outcome = {
  granted : bool;   (** decided yes {e and} the coordinator completed *)
  verdict : Decision.verdict;
  aborted : bool;
      (** the decision was made but the coordinator crashed or gave up
          mid-operation; any partial effects are unknown to the client *)
  messages : int;   (** messages sent by this operation *)
  bytes : int;      (** nominal bytes sent *)
  content : string option; (** what a read returned *)
}

val create :
  ?flavor:Decision.flavor ->
  ?segment_of:(Site_set.site -> int) ->
  ?latency:(Site_set.site -> Site_set.site -> float) ->
  ?initial_content:string ->
  ?delivery:delivery ->
  universe:Site_set.t ->
  unit ->
  t
(** All copies start up, connected, identical.  Site ordering: lowest id
    ranks highest.  [delivery] defaults to {!Quiet}.
    @raise Invalid_argument on bad deadline parameters. *)

val node : t -> Site_set.site -> Node.t
val universe : t -> Site_set.t
val transport : t -> Transport.t
val up_sites : t -> Site_set.t

val fresh_sites : t -> Site_set.t
(** Sites continuously up since a commit they demonstrably applied. *)

val amnesiac_sites : t -> Site_set.t
(** Sites whose stable record was corrupt at restart: they hold no
    trustworthy ensemble and must RECOVER before coordinating. *)

val set_chaos_hook : t -> (chaos_event -> unit) -> unit
(** Install the fault-injection hook; it fires at the protocol's crash
    points and may call {!crash} on any site (coordinator included —
    a crash mid-commit stops the remaining COMMIT sends). *)

val clear_chaos_hook : t -> unit

val set_commit_witness : t -> (Site_set.site -> Replica.t -> unit) -> unit
(** Observe every commit applied at every node (safety-oracle hook). *)

val clear_commit_witness : t -> unit

val fail : t -> Site_set.site -> unit

val crash : t -> Site_set.site -> unit
(** Alias of {!fail}: fail-stop crash losing all volatile state.  The
    ensemble survives only as the node's stable record (which chaos may
    corrupt before the restart — see {!Node.set_stable_record}). *)

val restart_silently : t -> Site_set.site -> unit
(** Mark up without running recovery (the site stays stale).  The
    ensemble is reloaded through the codec; a corrupt record leaves the
    site amnesiac. *)

val partition : t -> Site_set.t list -> unit
(** @raise Invalid_argument when the groups do not cover the universe. *)

val heal : t -> unit

val read : t -> at:Site_set.site -> outcome
(** Figure 1 coordinated at [at].
    @raise Invalid_argument if [at] holds no copy, is down or amnesiac. *)

val write : t -> at:Site_set.site -> content:string -> outcome
(** Figure 2. *)

val recover : t -> site:Site_set.site -> outcome
(** Figure 3: brings [site] up (reloading its ensemble from stable
    storage; a corrupt record demotes it to an amnesiac participant whose
    own state takes no part in the decision) and runs its recovery
    protocol once. *)

val lock : t -> at:Site_set.site -> op:int -> [ `Granted of Site_set.t | `Denied ]
(** Serialize operations: acquire the volatile lock for operation [op] at
    every reachable copy (all-or-nothing; on conflict everything acquired
    is released and [`Denied] is returned — retry later, never deadlock).
    Returns the locked sites on success.  Locks are volatile: a crash
    releases them. *)

val unlock : t -> at:Site_set.site -> op:int -> unit
(** Release operation [op]'s locks everywhere reachable. *)

val groups : t -> Site_set.t list option
(** The declared partition groups ([None] = fully connected). *)

val components : t -> Site_set.t list
(** Live connectivity components: the declared groups restricted to up
    sites, empty components dropped. *)

type snapshot
(** An immutable copy of the cluster's inter-operation state: every
    node's persistent state plus the up/groups/fresh topology
    bookkeeping.  Valid only while the transport is quiet. *)

val snapshot : t -> snapshot
(** @raise Invalid_argument while traffic is in flight. *)

val restore : t -> snapshot -> unit
(** Reinstate a snapshot; a restored run replays bit-identically to a
    fresh execution of the same steps.
    @raise Invalid_argument while traffic is in flight. *)

val replica_states : t -> Replica.t array
(** Current ensembles of every site (for equivalence tests against the
    pure {!Dynvote.Operation} semantics). *)

val is_consistent : t -> bool
(** Mutual consistency: equal version numbers imply equal contents. *)

val connection_vector_messages : Site_set.t list -> int
(** Per-topology-event state-exchange bill of the non-optimistic
    algorithms, given the live components. *)
