(** A replicated file driven over real (simulated) message exchanges.

    Implements READ / WRITE / RECOVER (Figures 1–3, or 5–7 with a
    topological flavor) as broadcast-gather-decide-commit message rounds,
    with per-operation traffic accounting.  Operations are atomic with
    respect to topology changes, per the paper's delivery assumptions. *)

type t

type outcome = {
  granted : bool;
  verdict : Decision.verdict;
  messages : int;   (** messages sent by this operation *)
  bytes : int;      (** nominal bytes sent *)
  content : string option; (** what a read returned *)
}

val create :
  ?flavor:Decision.flavor ->
  ?segment_of:(Site_set.site -> int) ->
  ?latency:(Site_set.site -> Site_set.site -> float) ->
  ?initial_content:string ->
  universe:Site_set.t ->
  unit ->
  t
(** All copies start up, connected, identical.  Site ordering: lowest id
    ranks highest. *)

val node : t -> Site_set.site -> Node.t
val universe : t -> Site_set.t
val transport : t -> Transport.t
val up_sites : t -> Site_set.t

val fail : t -> Site_set.site -> unit
val restart_silently : t -> Site_set.site -> unit
(** Mark up without running recovery (the site stays stale). *)

val partition : t -> Site_set.t list -> unit
(** @raise Invalid_argument when the groups do not cover the universe. *)

val heal : t -> unit

val read : t -> at:Site_set.site -> outcome
(** Figure 1 coordinated at [at].
    @raise Invalid_argument if [at] holds no copy or is down. *)

val write : t -> at:Site_set.site -> content:string -> outcome
(** Figure 2. *)

val recover : t -> site:Site_set.site -> outcome
(** Figure 3: brings [site] up and runs its recovery protocol once. *)

val lock : t -> at:Site_set.site -> op:int -> [ `Granted of Site_set.t | `Denied ]
(** Serialize operations: acquire the volatile lock for operation [op] at
    every reachable copy (all-or-nothing; on conflict everything acquired
    is released and [`Denied] is returned — retry later, never deadlock).
    Returns the locked sites on success.  Locks are volatile: a crash
    releases them. *)

val unlock : t -> at:Site_set.site -> op:int -> unit
(** Release operation [op]'s locks everywhere reachable. *)

val replica_states : t -> Replica.t array
(** Current ensembles of every site (for equivalence tests against the
    pure {!Dynvote.Operation} semantics). *)

val is_consistent : t -> bool
(** Mutual consistency: equal version numbers imply equal contents. *)

val connection_vector_messages : Site_set.t list -> int
(** Per-topology-event state-exchange bill of the non-optimistic
    algorithms, given the live components. *)
