(** Asynchronous message transport over the simulated network.

    Delivery order is deterministic (timestamp, then send order); messages
    between unconnected sites are dropped silently, matching the paper's
    "no answer means unavailable" model. *)

type t

type stats = {
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable bytes : int;
  by_kind : (string, int) Hashtbl.t;
}

val create :
  ?latency:(Site_set.site -> Site_set.site -> float) ->
  ?connected:(Site_set.site -> Site_set.site -> bool) ->
  unit ->
  t
(** Defaults: 1 ms latency between every pair, full connectivity. *)

val set_connectivity : t -> (Site_set.site -> Site_set.site -> bool) -> unit

val set_fault : t -> (Message.t -> bool) -> unit
(** Fault injection: messages matching the predicate are silently dropped
    (counted in the dropped statistic). *)

val clear_fault : t -> unit
val register : t -> Site_set.site -> (t -> Message.t -> unit) -> unit
val now : t -> float

val send : t -> src:Site_set.site -> dst:Site_set.site -> Message.payload -> unit
val broadcast : t -> src:Site_set.site -> targets:Site_set.t -> Message.payload -> unit
(** To every member of [targets] except [src]. *)

val run_until_quiet : t -> unit
(** Deliver all in-flight messages (and any they trigger), in order.
    Connectivity is rechecked at delivery time. *)

val stats : t -> stats
val messages_sent : t -> int
val messages_delivered : t -> int
val messages_dropped : t -> int
val bytes_sent : t -> int
val kind_count : t -> string -> int
val reset_stats : t -> unit
