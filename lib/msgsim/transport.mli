(** Asynchronous message transport over the simulated network.

    Delivery order is deterministic (timestamp, then send order); messages
    between unconnected sites are dropped silently, matching the paper's
    "no answer means unavailable" model.

    A composable {e fault plan} can additionally lose, duplicate or delay
    any message at send time — the adversarial delivery model of the chaos
    harness.  Injected faults are accounted separately from partition
    drops. *)

type t

type fault =
  | Loss       (** Bernoulli per-link loss *)
  | Flap       (** scheduled link outage window *)
  | Duplicate  (** extra copy injected *)
  | Delay      (** bounded extra latency (reordering) *)

val fault_name : fault -> string

type verdict =
  | Pass  (** deliver normally *)
  | Drop_it of fault  (** lose the message ({!Loss} or {!Flap}) *)
  | Deliver_copies of float list
      (** deliver one copy per list entry, each with the given {e extra}
          delay on top of the link latency: [[0.]] is a normal delivery,
          [[0.; 0.]] a duplicate, [[d]] a delayed (reordered) message and
          [[]] a loss *)

type plan = now:float -> Message.t -> verdict
(** Consulted once per send, after the connectivity check. *)

type stats = {
  mutable sent : int;
  mutable delivered : int;
  mutable dropped_partition : int;  (** destination unreachable *)
  mutable dropped_fault : int;      (** eaten by the fault plan *)
  mutable duplicated : int;         (** extra copies injected *)
  mutable delayed : int;            (** copies given extra latency *)
  mutable flapped : int;            (** share of [dropped_fault] due to flaps *)
  mutable bytes : int;
  by_kind : (string, int) Hashtbl.t;
}

val create :
  ?latency:(Site_set.site -> Site_set.site -> float) ->
  ?connected:(Site_set.site -> Site_set.site -> bool) ->
  unit ->
  t
(** Defaults: 1 ms latency between every pair, full connectivity, no
    fault plan. *)

val set_connectivity : t -> (Site_set.site -> Site_set.site -> bool) -> unit

val set_obs : t -> Dynvote_obs.Hub.t -> unit
(** Report every send, delivery and drop into [obs], with the same
    [net.frames.*] counter names and {!Dynvote_obs.Trace} frame events
    the live switchboard uses — one vocabulary across the simulated and
    the real network.  Default: {!Dynvote_obs.Hub.noop}. *)

val set_plan : t -> plan -> unit
val clear_plan : t -> unit

val set_fault : t -> (Message.t -> bool) -> unit
(** Single-predicate sugar over {!set_plan}: matching messages are lost
    (counted as {!Loss} faults). *)

val clear_fault : t -> unit
val register : t -> Site_set.site -> (t -> Message.t -> unit) -> unit
val now : t -> float

val in_flight : t -> int
(** Messages scheduled but not yet delivered (e.g. still delayed past the
    last deadline). *)

val send : t -> src:Site_set.site -> dst:Site_set.site -> Message.payload -> unit
val broadcast : t -> src:Site_set.site -> targets:Site_set.t -> Message.payload -> unit
(** To every member of [targets] except [src]. *)

val run_until_quiet : t -> unit
(** Deliver all in-flight messages (and any they trigger), in order.
    Connectivity is rechecked at delivery time. *)

val run_for : t -> timeout:float -> unit
(** Deliver only what arrives within the next [timeout] simulated seconds
    and advance the clock to that deadline; later messages stay in flight
    and may surface as stale traffic during subsequent rounds.
    @raise Invalid_argument on a negative timeout. *)

val stats : t -> stats
val messages_sent : t -> int
val messages_delivered : t -> int

val messages_dropped : t -> int
(** [messages_dropped_partition + messages_dropped_fault]. *)

val messages_dropped_partition : t -> int
val messages_dropped_fault : t -> int
val bytes_sent : t -> int
val kind_count : t -> string -> int

val fault_count : t -> fault -> int
(** Injected-fault statistics by kind. *)

val reset_stats : t -> unit
