(* A replicated file executed over real (simulated) message exchanges:
   START gathers states by broadcast and reply, the majority-partition
   test runs on whatever answered, COMMIT distributes the new ensembles,
   and recoveries move the file data.

   Two delivery models are supported.  [Quiet] is the paper's: reliable
   in-order delivery within the current partition, operations atomic with
   respect to topology changes, and the coordinator simply waits for the
   network to go quiet.  [Deadline] removes those assumptions for the
   chaos harness: the coordinator gathers replies under a timeout with
   bounded retry/backoff, verifies data transfers, and aborts (rather
   than hangs or commits blindly) when the network eats its traffic.
   Under [Deadline], writes piggyback the new content on COMMIT so data
   and ensemble install atomically — the residue of an aborted write can
   then never masquerade as a committed version.

   Chaos hooks expose the crash points of the broadcast-gather-decide-
   commit round: a schedule can kill the coordinator right after the
   decision or between two COMMIT sends, so only a subset of the
   reachable copies learns the new (o, v, P).  Crash-recovery always
   reloads the ensemble through the {!Dynvote.Codec} stable-storage path;
   a torn or corrupted record leaves the site amnesiac until a RECOVER
   sponsored by sites that still remember succeeds.

   The per-operation message counts are the basis of the overhead
   comparison: the paper's claim is that optimistic dynamic voting costs
   "much the same message traffic as majority consensus voting", while
   non-optimistic dynamic voting additionally pays for the connection
   vector (state exchange on every topology change). *)

type delivery =
  | Quiet
  | Deadline of { timeout : float; retries : int; backoff : float }

type chaos_event =
  | After_decide of { coordinator : Site_set.site; granted : bool }
  | After_commit_send of {
      coordinator : Site_set.site;
      recipient : Site_set.site;
      sent : int;
      total : int;
    }

type t = {
  universe : Site_set.t;
  n_sites : int;
  nodes : Node.t array;
  transport : Transport.t;
  ctx : Operation.ctx;
  delivery : delivery;
  mutable up : Site_set.t;
  mutable groups : Site_set.t list option; (* None = fully connected *)
  mutable fresh : Site_set.t; (* continuously up since last commit *)
  mutable round : int; (* unique id per gather / fetch exchange *)
  mutable chaos_hook : (chaos_event -> unit) option;
}

type outcome = {
  granted : bool;
  verdict : Decision.verdict;
  aborted : bool; (* decided, but the coordinator crashed or gave up *)
  messages : int;
  bytes : int;
  content : string option; (* what a read returned *)
}

let connected t a b =
  Site_set.mem a t.up && Site_set.mem b t.up
  &&
  match t.groups with
  | None -> true
  | Some groups -> List.exists (fun g -> Site_set.mem a g && Site_set.mem b g) groups

let create ?(flavor = Decision.ldv_flavor) ?(segment_of = fun _ -> 0)
    ?(latency = fun _ _ -> 0.001) ?(initial_content = "") ?(delivery = Quiet)
    ~universe () =
  (match delivery with
  | Quiet -> ()
  | Deadline { timeout; retries; backoff } ->
      if timeout <= 0.0 || retries < 0 || backoff < 1.0 then
        invalid_arg "Cluster.create: bad deadline parameters");
  let n_sites = Site_set.max_elt universe + 1 in
  let ordering = Ordering.default n_sites in
  let nodes =
    Array.init n_sites (fun site -> Node.create ~site ~universe ~initial_content)
  in
  let transport = Transport.create ~latency () in
  let t =
    {
      universe;
      n_sites;
      nodes;
      transport;
      ctx = { Operation.flavor; ordering; segment_of };
      delivery;
      up = universe;
      groups = None;
      fresh = universe;
      round = 0;
      chaos_hook = None;
    }
  in
  Transport.set_connectivity transport (fun a b -> connected t a b);
  Site_set.iter
    (fun site ->
      Transport.register transport site (fun tr msg -> Node.handler nodes.(site) tr msg))
    universe;
  t

let node t site = t.nodes.(site)
let universe t = t.universe
let transport t = t.transport
let up_sites t = t.up
let fresh_sites t = t.fresh

let set_chaos_hook t hook = t.chaos_hook <- Some hook
let clear_chaos_hook t = t.chaos_hook <- None

let fire t event = match t.chaos_hook with Some hook -> hook event | None -> ()

let set_commit_witness t witness =
  Array.iter (fun node -> Node.set_commit_witness node witness) t.nodes

let clear_commit_witness t =
  Array.iter Node.clear_commit_witness t.nodes

let amnesiac_sites t =
  Site_set.filter (fun site -> Node.is_amnesiac t.nodes.(site)) t.universe

let fail t site =
  t.up <- Site_set.remove site t.up;
  t.fresh <- Site_set.remove site t.fresh;
  (* A crash loses all volatile state, including operation locks. *)
  Node.clear_lock t.nodes.(site)

let crash = fail

(* Drain the network according to the delivery model: completely (paper)
   or only up to the coordinator's deadline (chaos). *)
let drain t =
  match t.delivery with
  | Quiet -> Transport.run_until_quiet t.transport
  | Deadline { timeout; _ } -> Transport.run_for t.transport ~timeout

let restart_silently t site =
  t.up <- Site_set.add site t.up;
  (* A restart reloads the ensemble from stable storage; a corrupt record
     leaves the site amnesiac (and silent) until a RECOVER succeeds. *)
  ignore (Node.reload_from_stable t.nodes.(site) : (unit, string) result)

let partition t groups =
  let covered = List.fold_left Site_set.union Site_set.empty groups in
  if not (Site_set.equal covered t.universe) then
    invalid_arg "Cluster.partition: groups must cover the universe";
  t.groups <- Some groups

let heal t = t.groups <- None

let next_round t =
  t.round <- t.round + 1;
  t.round

(* START: broadcast a state request from [requester] and collect the
   replies for this round.  Under [Quiet] everything in flight is
   delivered; under [Deadline] the coordinator waits [timeout], then
   re-asks the silent sites up to [retries] times with [backoff]-scaled
   patience, and finally proceeds with whatever answered — a lost reply
   degrades the reachable set (possibly to an ABORT), never to a hang.
   Replies of earlier rounds are discarded by the round tag.  Returns R
   (including the requester unless it is amnesiac) and the states
   learned. *)
let start t ~requester =
  let round = next_round t in
  let replies = Hashtbl.create 8 in
  let requester_node = t.nodes.(requester) in
  Node.set_collector requester_node (fun message ->
      match message.Message.payload with
      | Message.State_reply { round = r; replica } when r = round ->
          Hashtbl.replace replies message.Message.src replica
      | _ -> ());
  (match t.delivery with
  | Quiet ->
      Transport.broadcast t.transport ~src:requester ~targets:t.universe
        (Message.State_request { round });
      Transport.run_until_quiet t.transport
  | Deadline { timeout; retries; backoff } ->
      let rec attempt n patience =
        let missing =
          Site_set.filter
            (fun site -> site <> requester && not (Hashtbl.mem replies site))
            t.universe
        in
        if not (Site_set.is_empty missing) then begin
          Site_set.iter
            (fun dst ->
              Transport.send t.transport ~src:requester ~dst
                (Message.State_request { round }))
            missing;
          Transport.run_for t.transport ~timeout:patience;
          if n < retries then attempt (n + 1) (patience *. backoff)
        end
      in
      attempt 0 timeout);
  Node.clear_collector requester_node;
  let states = Array.make t.n_sites (Node.replica requester_node) in
  let self =
    if Node.is_amnesiac requester_node then Site_set.empty
    else Site_set.singleton requester
  in
  let reachable =
    Hashtbl.fold
      (fun site replica acc ->
        states.(site) <- replica;
        Site_set.add site acc)
      replies self
  in
  states.(requester) <- Node.replica requester_node;
  (reachable, states)

let ensure_member t site =
  if not (Site_set.mem site t.universe) then
    invalid_arg "Cluster: requester does not hold a copy";
  if not (Site_set.mem site t.up) then invalid_arg "Cluster: requester is down";
  if Node.is_amnesiac t.nodes.(site) then
    invalid_arg "Cluster: requester is amnesiac (must RECOVER first)"

(* Fetch current data to [dst] from [src] (two messages), delivered now —
   the paper's unconditional transfer, valid under reliable delivery. *)
let transfer_data t ~src ~dst =
  let round = next_round t in
  Transport.send t.transport ~src:dst ~dst:src (Message.Data_request { round });
  Transport.run_until_quiet t.transport

(* Verified fetch for the chaos world: ask members of [sources] in turn
   until [dst] demonstrably holds data of at least [want_version], with
   the same bounded patience as the gather.  The reply matching this
   round force-installs (a recovering site's local data may be the
   residue of an uncommitted write and cannot be trusted, whatever its
   version number says); stray replies fall back to the monotone path. *)
let fetch_data t ~dst ~sources ~want_version =
  match t.delivery with
  | Quiet ->
      transfer_data t ~src:(Site_set.choose sources) ~dst;
      Node.data_version t.nodes.(dst) >= want_version
  | Deadline { timeout; retries; backoff } ->
      let sources = Site_set.to_list sources in
      let n_sources = List.length sources in
      let rec attempt n patience =
        if Node.data_version t.nodes.(dst) >= want_version then true
        else if n > retries then false
        else begin
          let src = List.nth sources (n mod n_sources) in
          let round = next_round t in
          Node.set_fetch_round t.nodes.(dst) (Some round);
          Transport.send t.transport ~src:dst ~dst:src (Message.Data_request { round });
          Transport.run_for t.transport ~timeout:patience;
          Node.set_fetch_round t.nodes.(dst) None;
          attempt (n + 1) (patience *. backoff)
        end
      in
      attempt 0 timeout

let with_counters t f =
  let before_msgs = Transport.messages_sent t.transport in
  let before_bytes = Transport.bytes_sent t.transport in
  let verdict, content, aborted = f () in
  {
    granted = Decision.is_granted verdict && not aborted;
    verdict;
    aborted;
    messages = Transport.messages_sent t.transport - before_msgs;
    bytes = Transport.bytes_sent t.transport - before_bytes;
    content;
  }

(* Distribute COMMIT(recipients, o, v, P) from the coordinator; the
   coordinator applies its own share locally.  The loop stops the moment
   the coordinator is crashed (by a chaos hook), so only a prefix of the
   recipients ever hears about the new ensemble — the classic mid-commit
   crash.  Returns whether the coordinator survived the whole loop. *)
let distribute_commit t ~coordinator ~recipients ~op_no ~version ~partition ?data () =
  let total = Site_set.cardinal recipients in
  let sent = ref 0 in
  let survived = ref true in
  (try
     Site_set.iter
       (fun site ->
         if not (Site_set.mem coordinator t.up) then begin
           survived := false;
           raise Exit
         end;
         incr sent;
         if site = coordinator then
           Node.install_commit t.nodes.(site) ~op_no ~version ~partition ?data ()
         else
           Transport.send t.transport ~src:coordinator ~dst:site
             (Message.Commit { op_no; version; partition; data });
         fire t
           (After_commit_send { coordinator; recipient = site; sent = !sent; total }))
       recipients
   with Exit -> ());
  if !survived && not (Site_set.mem coordinator t.up) then survived := false;
  drain t;
  (* Only the recipients that demonstrably applied the commit are fresh
     again; a copy whose COMMIT the network ate is still running on its
     previous ensemble. *)
  let applied =
    Site_set.filter
      (fun site ->
        Site_set.mem site t.up && Replica.op_no (Node.replica t.nodes.(site)) >= op_no)
      recipients
  in
  t.fresh <- Site_set.union t.fresh applied;
  !survived

(* Shared head of every operation: decide, fire the post-decision crash
   point, and tell the caller whether the coordinator is still standing. *)
let decide t ~coordinator ~states ~reachable =
  let verdict = Operation.evaluate t.ctx states ~fresh:t.fresh ~reachable () in
  fire t (After_decide { coordinator; granted = Decision.is_granted verdict });
  (verdict, Site_set.mem coordinator t.up)

let read t ~at =
  ensure_member t at;
  with_counters t (fun () ->
      let reachable, states = start t ~requester:at in
      match decide t ~coordinator:at ~states ~reachable with
      | (Decision.Denied _ as verdict), alive -> (verdict, None, not alive)
      | (Decision.Granted _ as verdict), false -> (verdict, None, true)
      | (Decision.Granted g as verdict), true ->
          let m = g.Decision.m in
          let o = Replica.op_no states.(m) and v = Replica.version states.(m) in
          (* Serve the read: fetch data from an up-to-date copy if the
             requester's own copy is stale — and under chaos, verify the
             fetch actually landed before serving anything. *)
          if (not (Site_set.mem at g.Decision.s)) && not (fetch_data t ~dst:at ~sources:g.Decision.s ~want_version:v)
          then (verdict, None, true)
          else begin
            let survived =
              distribute_commit t ~coordinator:at ~recipients:g.Decision.s
                ~op_no:(o + 1) ~version:v ~partition:g.Decision.s ()
            in
            (verdict, Some (Node.content t.nodes.(at)), not survived)
          end)

let write t ~at ~content =
  ensure_member t at;
  with_counters t (fun () ->
      let reachable, states = start t ~requester:at in
      match decide t ~coordinator:at ~states ~reachable with
      | (Decision.Denied _ as verdict), alive -> (verdict, None, not alive)
      | (Decision.Granted _ as verdict), false -> (verdict, None, true)
      | (Decision.Granted g as verdict), true -> (
          let m = g.Decision.m in
          let o = Replica.op_no states.(m) and v = Replica.version states.(m) in
          match t.delivery with
          | Quiet ->
              (* Paper model: perform the write at every up-to-date copy,
                 then commit the new ensemble. *)
              let round = t.round in
              Site_set.iter
                (fun site ->
                  if site = at then
                    Node.write_local t.nodes.(site) ~version:(v + 1) ~content
                  else
                    Transport.send t.transport ~src:at ~dst:site
                      (Message.Data { round; version = v + 1; content }))
                g.Decision.s;
              Transport.run_until_quiet t.transport;
              let survived =
                distribute_commit t ~coordinator:at ~recipients:g.Decision.s
                  ~op_no:(o + 1) ~version:(v + 1) ~partition:g.Decision.s ()
              in
              (verdict, None, not survived)
          | Deadline _ ->
              (* Chaos model: a separate data round could be partially
                 lost, leaving committed-but-dataless copies; instead the
                 content rides inside COMMIT and installs atomically with
                 the ensemble. *)
              Node.write_local t.nodes.(at) ~version:(v + 1) ~content;
              let survived =
                distribute_commit t ~coordinator:at ~recipients:g.Decision.s
                  ~op_no:(o + 1) ~version:(v + 1) ~partition:g.Decision.s
                  ~data:content ()
              in
              (verdict, None, not survived)))

(* RECOVER, coordinated by the recovering site itself (Figure 3).  The
   restart always goes through stable storage: a corrupt record makes the
   site amnesiac, in which case its own (lost) state takes no part in the
   decision — only the answering peers vote, and a successful commit
   reinstates the ensemble. *)
let recover t ~site =
  if not (Site_set.mem site t.universe) then
    invalid_arg "Cluster.recover: site does not hold a copy";
  if not (Site_set.mem site t.up) then begin
    t.up <- Site_set.add site t.up;
    ignore (Node.reload_from_stable t.nodes.(site) : (unit, string) result)
  end;
  with_counters t (fun () ->
      let reachable, states = start t ~requester:site in
      match decide t ~coordinator:site ~states ~reachable with
      | (Decision.Denied _ as verdict), alive -> (verdict, None, not alive)
      | (Decision.Granted _ as verdict), false -> (verdict, None, true)
      | (Decision.Granted g as verdict), true ->
          let m = g.Decision.m in
          let o = Replica.op_no states.(m) and v = Replica.version states.(m) in
          let node = t.nodes.(site) in
          let must_fetch =
            Node.is_amnesiac node
            || Replica.version (Node.replica node) < v
            || Node.data_version node < v
          in
          if must_fetch && not (fetch_data t ~dst:site ~sources:g.Decision.s ~want_version:v)
          then (verdict, None, true)
          else begin
            let recipients = Site_set.add site g.Decision.s in
            let survived =
              distribute_commit t ~coordinator:site ~recipients ~op_no:(o + 1)
                ~version:v ~partition:recipients ()
            in
            (verdict, None, not survived)
          end)

let groups t = t.groups

(* Live connectivity components: the declared partition groups restricted
   to up sites (one component of every up site when unpartitioned). *)
let components t =
  match t.groups with
  | None -> if Site_set.is_empty t.up then [] else [ t.up ]
  | Some groups ->
      List.filter_map
        (fun g ->
          let live = Site_set.inter g t.up in
          if Site_set.is_empty live then None else Some live)
        groups

(* Snapshots capture the inter-operation cluster state: every node plus
   the topology bookkeeping.  The transport carries no state worth saving
   between operations — snapshots are only valid while it is quiet, which
   is also the only moment a model checker branches.  The round counter is
   saved so a restored run is bit-identical to a fresh one. *)
type snapshot = {
  snap_nodes : Node.snapshot array;
  snap_up : Site_set.t;
  snap_groups : Site_set.t list option;
  snap_fresh : Site_set.t;
  snap_round : int;
}

let snapshot t =
  if Transport.in_flight t.transport > 0 then
    invalid_arg "Cluster.snapshot: traffic in flight";
  {
    snap_nodes = Array.map Node.snapshot t.nodes;
    snap_up = t.up;
    snap_groups = t.groups;
    snap_fresh = t.fresh;
    snap_round = t.round;
  }

let restore t s =
  if Transport.in_flight t.transport > 0 then
    invalid_arg "Cluster.restore: traffic in flight";
  Array.iteri (fun i node -> Node.restore t.nodes.(i) node) s.snap_nodes;
  t.up <- s.snap_up;
  t.groups <- s.snap_groups;
  t.fresh <- s.snap_fresh;
  t.round <- s.snap_round

let replica_states t =
  Array.map Node.replica t.nodes

let is_consistent t =
  (* Any two copies with equal version numbers hold equal content. *)
  let ok = ref true in
  Site_set.iter
    (fun a ->
      Site_set.iter
        (fun b ->
          if
            a < b
            && Node.data_version t.nodes.(a) = Node.data_version t.nodes.(b)
            && not (String.equal (Node.content t.nodes.(a)) (Node.content t.nodes.(b)))
          then ok := false)
        t.universe)
    t.universe;
  !ok

(* Operation serialization.  A coordinator wishing to run an operation in
   mutual exclusion first locks every reachable copy: it broadcasts
   Lock_request and succeeds only if every reply grants.  On any refusal
   (a rival operation holds some lock) it releases what it took and the
   caller must retry later — all-or-nothing acquisition, so deadlock is
   impossible.  Locks are volatile: a crash releases them. *)
let lock t ~at ~op =
  ensure_member t at;
  let at_node = t.nodes.(at) in
  let self_granted = Node.try_lock at_node ~op in
  let replies = Hashtbl.create 8 in
  Node.set_collector at_node (fun message ->
      match message.Message.payload with
      | Message.Lock_reply { op = reply_op; granted } when reply_op = op ->
          Hashtbl.replace replies message.Message.src granted
      | _ -> ());
  Transport.broadcast t.transport ~src:at ~targets:t.universe
    (Message.Lock_request { op });
  drain t;
  Node.clear_collector at_node;
  let all_granted =
    self_granted && Hashtbl.fold (fun _ granted acc -> acc && granted) replies true
  in
  if all_granted then
    `Granted (Hashtbl.fold (fun s _ acc -> Site_set.add s acc) replies (Site_set.singleton at))
  else begin
    (* All-or-nothing: release whatever was acquired and report the
       conflict; the caller retries later, so no deadlock can form. *)
    Transport.broadcast t.transport ~src:at ~targets:t.universe (Message.Unlock { op });
    if Node.locked_by at_node = Some op && self_granted then Node.clear_lock at_node;
    drain t;
    `Denied
  end

let unlock t ~at ~op =
  ensure_member t at;
  if Node.locked_by t.nodes.(at) = Some op then Node.clear_lock t.nodes.(at);
  Transport.broadcast t.transport ~src:at ~targets:t.universe (Message.Unlock { op });
  drain t

(* The cost the non-optimistic algorithms pay that the optimistic ones do
   not: maintaining (an approximation of) the connection vector requires a
   state exchange within each component at every topology change.  Given
   the component sizes, this is the per-event message bill. *)
let connection_vector_messages components =
  List.fold_left
    (fun acc component ->
      let size = Site_set.cardinal component in
      acc + (size * (size - 1)))
    0 components
