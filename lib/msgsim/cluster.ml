(* A replicated file executed over real (simulated) message exchanges:
   START gathers states by broadcast and reply, the majority-partition
   test runs on whatever answered, COMMIT distributes the new ensembles,
   and recoveries move the file data.  Operations are atomic with respect
   to topology changes (the paper's model: reliable in-order delivery
   within the current partition, fail-stop sites).

   The per-operation message counts are the basis of the overhead
   comparison: the paper's claim is that optimistic dynamic voting costs
   "much the same message traffic as majority consensus voting", while
   non-optimistic dynamic voting additionally pays for the connection
   vector (state exchange on every topology change). *)

type t = {
  universe : Site_set.t;
  n_sites : int;
  nodes : Node.t array;
  transport : Transport.t;
  ctx : Operation.ctx;
  mutable up : Site_set.t;
  mutable groups : Site_set.t list option; (* None = fully connected *)
  mutable fresh : Site_set.t; (* continuously up since last commit *)
}

type outcome = {
  granted : bool;
  verdict : Decision.verdict;
  messages : int;
  bytes : int;
  content : string option; (* what a read returned *)
}

let connected t a b =
  Site_set.mem a t.up && Site_set.mem b t.up
  &&
  match t.groups with
  | None -> true
  | Some groups -> List.exists (fun g -> Site_set.mem a g && Site_set.mem b g) groups

let create ?(flavor = Decision.ldv_flavor) ?(segment_of = fun _ -> 0)
    ?(latency = fun _ _ -> 0.001) ?(initial_content = "") ~universe () =
  let n_sites = Site_set.max_elt universe + 1 in
  let ordering = Ordering.default n_sites in
  let nodes =
    Array.init n_sites (fun site -> Node.create ~site ~universe ~initial_content)
  in
  let transport = Transport.create ~latency () in
  let t =
    {
      universe;
      n_sites;
      nodes;
      transport;
      ctx = { Operation.flavor; ordering; segment_of };
      up = universe;
      groups = None;
      fresh = universe;
    }
  in
  Transport.set_connectivity transport (fun a b -> connected t a b);
  Site_set.iter
    (fun site ->
      Transport.register transport site (fun tr msg -> Node.handler nodes.(site) tr msg))
    universe;
  t

let node t site = t.nodes.(site)
let universe t = t.universe
let transport t = t.transport
let up_sites t = t.up

let fail t site =
  t.up <- Site_set.remove site t.up;
  t.fresh <- Site_set.remove site t.fresh;
  (* A crash loses all volatile state, including operation locks. *)
  Node.clear_lock t.nodes.(site)

let restart_silently t site = t.up <- Site_set.add site t.up

let partition t groups =
  let covered = List.fold_left Site_set.union Site_set.empty groups in
  if not (Site_set.equal covered t.universe) then
    invalid_arg "Cluster.partition: groups must cover the universe";
  t.groups <- Some groups

let heal t = t.groups <- None

(* START: broadcast a state request from [requester], deliver everything,
   and collect the replies.  Returns R (including the requester) and the
   states learned. *)
let start t ~requester =
  let replies = Hashtbl.create 8 in
  let requester_node = t.nodes.(requester) in
  Node.set_collector requester_node (fun message ->
      match message.Message.payload with
      | Message.State_reply replica -> Hashtbl.replace replies message.Message.src replica
      | Message.State_request | Message.Commit _ | Message.Data_request | Message.Data _
      | Message.Ack | Message.Lock_request _ | Message.Lock_reply _ | Message.Unlock _ ->
          ());
  Transport.broadcast t.transport ~src:requester ~targets:t.universe Message.State_request;
  Transport.run_until_quiet t.transport;
  Node.clear_collector requester_node;
  let states = Array.make t.n_sites (Node.replica requester_node) in
  let reachable =
    Hashtbl.fold
      (fun site replica acc ->
        states.(site) <- replica;
        Site_set.add site acc)
      replies
      (Site_set.singleton requester)
  in
  states.(requester) <- Node.replica requester_node;
  (reachable, states)

let ensure_member t site =
  if not (Site_set.mem site t.universe) then
    invalid_arg "Cluster: requester does not hold a copy";
  if not (Site_set.mem site t.up) then invalid_arg "Cluster: requester is down"

(* Fetch current data to [dst] from [src] (two messages), delivered now. *)
let transfer_data t ~src ~dst =
  Transport.send t.transport ~src:dst ~dst:src Message.Data_request;
  Transport.run_until_quiet t.transport

let with_counters t f =
  let before_msgs = Transport.messages_sent t.transport in
  let before_bytes = Transport.bytes_sent t.transport in
  let verdict, content = f () in
  {
    granted = Decision.is_granted verdict;
    verdict;
    messages = Transport.messages_sent t.transport - before_msgs;
    bytes = Transport.bytes_sent t.transport - before_bytes;
    content;
  }

(* Distribute COMMIT(recipients, o, v, P) from the coordinator; the
   coordinator applies its own share locally. *)
let distribute_commit t ~coordinator ~recipients ~op_no ~version ~partition =
  Site_set.iter
    (fun site ->
      if site = coordinator then
        Node.install_commit t.nodes.(site) ~op_no ~version ~partition
      else
        Transport.send t.transport ~src:coordinator ~dst:site
          (Message.Commit { op_no; version; partition }))
    recipients;
  Transport.run_until_quiet t.transport;
  (* Every recipient that is up just committed: it is fresh again. *)
  t.fresh <- Site_set.union t.fresh (Site_set.inter recipients t.up)

let read t ~at =
  ensure_member t at;
  with_counters t (fun () ->
      let reachable, states = start t ~requester:at in
      match Operation.evaluate t.ctx states ~fresh:t.fresh ~reachable () with
      | Decision.Denied _ as verdict -> (verdict, None)
      | Decision.Granted g as verdict ->
          let m = g.Decision.m in
          let o = Replica.op_no states.(m) and v = Replica.version states.(m) in
          (* Serve the read: fetch data from an up-to-date copy if the
             requester's own copy is stale. *)
          if not (Site_set.mem at g.Decision.s) then transfer_data t ~src:m ~dst:at;
          distribute_commit t ~coordinator:at ~recipients:g.Decision.s ~op_no:(o + 1)
            ~version:v ~partition:g.Decision.s;
          (verdict, Some (Node.content t.nodes.(at))))

let write t ~at ~content =
  ensure_member t at;
  with_counters t (fun () ->
      let reachable, states = start t ~requester:at in
      match Operation.evaluate t.ctx states ~fresh:t.fresh ~reachable () with
      | Decision.Denied _ as verdict -> (verdict, None)
      | Decision.Granted g as verdict ->
          let m = g.Decision.m in
          let o = Replica.op_no states.(m) and v = Replica.version states.(m) in
          (* Perform the write at every up-to-date copy... *)
          Site_set.iter
            (fun site ->
              if site = at then Node.write_local t.nodes.(site) ~version:(v + 1) ~content
              else
                Transport.send t.transport ~src:at ~dst:site
                  (Message.Data { version = v + 1; content }))
            g.Decision.s;
          Transport.run_until_quiet t.transport;
          (* ...then commit the new ensemble. *)
          distribute_commit t ~coordinator:at ~recipients:g.Decision.s ~op_no:(o + 1)
            ~version:(v + 1) ~partition:g.Decision.s;
          (verdict, None))

(* RECOVER, coordinated by the recovering site itself (Figure 3). *)
let recover t ~site =
  if not (Site_set.mem site t.universe) then
    invalid_arg "Cluster.recover: site does not hold a copy";
  t.up <- Site_set.add site t.up;
  with_counters t (fun () ->
      let reachable, states = start t ~requester:site in
      match Operation.evaluate t.ctx states ~fresh:t.fresh ~reachable () with
      | Decision.Denied _ as verdict -> (verdict, None)
      | Decision.Granted g as verdict ->
          let m = g.Decision.m in
          let o = Replica.op_no states.(m) and v = Replica.version states.(m) in
          if Replica.version (Node.replica t.nodes.(site)) < v then
            transfer_data t ~src:m ~dst:site;
          let recipients = Site_set.add site g.Decision.s in
          distribute_commit t ~coordinator:site ~recipients ~op_no:(o + 1) ~version:v
            ~partition:recipients;
          (verdict, None))

let replica_states t =
  Array.map Node.replica t.nodes

let is_consistent t =
  (* Any two copies with equal version numbers hold equal content. *)
  let ok = ref true in
  Site_set.iter
    (fun a ->
      Site_set.iter
        (fun b ->
          if
            a < b
            && Node.data_version t.nodes.(a) = Node.data_version t.nodes.(b)
            && not (String.equal (Node.content t.nodes.(a)) (Node.content t.nodes.(b)))
          then ok := false)
        t.universe)
    t.universe;
  !ok

(* Operation serialization.  A coordinator wishing to run an operation in
   mutual exclusion first locks every reachable copy: it broadcasts
   Lock_request and succeeds only if every reply grants.  On any refusal
   (a rival operation holds some lock) it releases what it took and the
   caller must retry later — all-or-nothing acquisition, so deadlock is
   impossible.  Locks are volatile: a crash releases them. *)
let lock t ~at ~op =
  ensure_member t at;
  let at_node = t.nodes.(at) in
  let self_granted = Node.try_lock at_node ~op in
  let replies = Hashtbl.create 8 in
  Node.set_collector at_node (fun message ->
      match message.Message.payload with
      | Message.Lock_reply { op = reply_op; granted } when reply_op = op ->
          Hashtbl.replace replies message.Message.src granted
      | _ -> ());
  Transport.broadcast t.transport ~src:at ~targets:t.universe
    (Message.Lock_request { op });
  Transport.run_until_quiet t.transport;
  Node.clear_collector at_node;
  let all_granted =
    self_granted && Hashtbl.fold (fun _ granted acc -> acc && granted) replies true
  in
  if all_granted then
    `Granted (Hashtbl.fold (fun s _ acc -> Site_set.add s acc) replies (Site_set.singleton at))
  else begin
    (* All-or-nothing: release whatever was acquired and report the
       conflict; the caller retries later, so no deadlock can form. *)
    Transport.broadcast t.transport ~src:at ~targets:t.universe (Message.Unlock { op });
    if Node.locked_by at_node = Some op && self_granted then Node.clear_lock at_node;
    Transport.run_until_quiet t.transport;
    `Denied
  end

let unlock t ~at ~op =
  ensure_member t at;
  if Node.locked_by t.nodes.(at) = Some op then Node.clear_lock t.nodes.(at);
  Transport.broadcast t.transport ~src:at ~targets:t.universe (Message.Unlock { op });
  Transport.run_until_quiet t.transport

(* The cost the non-optimistic algorithms pay that the optimistic ones do
   not: maintaining (an approximation of) the connection vector requires a
   state exchange within each component at every topology change.  Given
   the component sizes, this is the per-event message bill. *)
let connection_vector_messages components =
  List.fold_left
    (fun acc component ->
      let size = Site_set.cardinal component in
      acc + (size * (size - 1)))
    0 components
