(* The observability layer: clock discipline, thread-safe instruments,
   log-scaled histogram accuracy against exact sorted-array quantiles,
   the bounded trace ring, and the inertness of the no-op hub. *)

module Clock = Dynvote_obs.Clock
module Metrics = Dynvote_obs.Metrics
module Trace = Dynvote_obs.Trace
module Hub = Dynvote_obs.Hub

(* --- clock ----------------------------------------------------------- *)

let test_clock_monotone () =
  (* Whatever backs it (CLOCK_MONOTONIC or the clamped wall clock), the
     process clock must never run backwards. *)
  let prev = ref (Clock.now ()) in
  for _ = 1 to 10_000 do
    let t = Clock.now () in
    Alcotest.(check bool) "non-decreasing" true (t >= !prev);
    prev := t
  done

let test_manual_clock () =
  let m = Clock.Manual.create () in
  Alcotest.(check (float 0.0)) "starts at 0" 0.0 (Clock.Manual.read m);
  Clock.Manual.set m 5.0;
  Alcotest.(check (float 0.0)) "set" 5.0 (Clock.Manual.read m);
  Clock.Manual.advance m 1.5;
  Alcotest.(check (float 0.0)) "advance" 6.5 (Clock.Manual.read m);
  Clock.Manual.advance m (-10.0);
  Alcotest.(check (float 0.0)) "backward step allowed" (-3.5)
    (Clock.Manual.read m);
  let clk = Clock.Manual.clock m in
  Clock.Manual.set m 42.0;
  Alcotest.(check (float 0.0)) "clock function tracks" 42.0 (clk ());
  let m2 = Clock.Manual.create ~at:7.0 () in
  Alcotest.(check (float 0.0)) "explicit epoch" 7.0 (Clock.Manual.read m2)

(* --- counters and gauges --------------------------------------------- *)

let test_counter_threads () =
  let r = Metrics.create () in
  let c = Metrics.counter r "test.hits" in
  let threads =
    List.init 4 (fun _ ->
        Thread.create (fun () -> for _ = 1 to 10_000 do Metrics.incr c done) ())
  in
  List.iter Thread.join threads;
  Alcotest.(check int) "no lost increments" 40_000 (Metrics.counter_value c);
  Metrics.add c 2;
  Alcotest.(check int) "add" 40_002 (Metrics.counter_value c);
  Alcotest.(check bool) "find-or-create returns the same counter" true
    (Metrics.counter_value (Metrics.counter r "test.hits") = 40_002)

let test_gauge () =
  let r = Metrics.create () in
  let g = Metrics.gauge r "test.level" in
  Alcotest.(check (float 0.0)) "initial" 0.0 (Metrics.gauge_value g);
  Metrics.set_gauge g 3.25;
  Alcotest.(check (float 0.0)) "set" 3.25 (Metrics.gauge_value g)

(* --- histograms ------------------------------------------------------ *)

let exact_quantile sorted q =
  let n = Array.length sorted in
  sorted.(min (n - 1) (max 0 (int_of_float (ceil (q *. float_of_int n)) - 1)))

let test_histogram_vs_exact () =
  (* Deterministic samples spanning five decades; the histogram quantile
     must land in the same bucket as the exact sorted-array quantile —
     that is what [quantile_bounds] promises. *)
  let r = Metrics.create () in
  let h = Metrics.histogram r "test.lat" in
  let state = ref 0x9E3779B9 in
  let next () =
    state := (!state * 1103515245 + 12345) land 0x3FFFFFFF;
    (* log-uniform over roughly [20 us, 2 s] *)
    2e-5 *. (10.0 ** (5.0 *. float_of_int !state /. float_of_int 0x40000000))
  in
  let samples = Array.init 2000 (fun _ -> next ()) in
  Array.iter (Metrics.observe h) samples;
  let sorted = Array.copy samples in
  Array.sort compare sorted;
  Alcotest.(check int) "count" 2000 (Metrics.histogram_count h);
  Alcotest.(check (float 1e-9)) "max is exact" sorted.(1999)
    (Metrics.histogram_max h);
  let mean = Array.fold_left ( +. ) 0.0 samples /. 2000.0 in
  Alcotest.(check bool) "mean is exact (Welford)" true
    (Float.abs (Metrics.histogram_mean h -. mean) < 1e-9 *. mean);
  List.iter
    (fun q ->
      let exact = exact_quantile sorted q in
      let lo, hi = Metrics.quantile_bounds h q in
      let mid = Metrics.quantile h q in
      Alcotest.(check bool)
        (Printf.sprintf "q%.2f: exact %.6g in bucket [%.6g, %.6g]" q exact lo hi)
        true
        (exact >= lo && exact <= hi);
      Alcotest.(check bool)
        (Printf.sprintf "q%.2f: reported midpoint inside its own bucket" q)
        true
        (mid >= lo && mid <= hi))
    [ 0.01; 0.25; 0.50; 0.90; 0.95; 0.99; 1.0 ]

let test_histogram_edges () =
  let r = Metrics.create () in
  let empty = Metrics.histogram r "test.empty" in
  Alcotest.(check int) "empty count" 0 (Metrics.histogram_count empty);
  Alcotest.(check bool) "empty p50 is nan" true
    (Float.is_nan (Metrics.quantile empty 0.5));
  Alcotest.(check bool) "empty mean is nan" true
    (Float.is_nan (Metrics.histogram_mean empty));
  let lo, hi = Metrics.quantile_bounds empty 0.5 in
  Alcotest.(check bool) "empty bounds are nan" true
    (Float.is_nan lo && Float.is_nan hi);

  let single = Metrics.histogram r "test.single" in
  Metrics.observe single 0.003;
  List.iter
    (fun q ->
      let lo, hi = Metrics.quantile_bounds single q in
      Alcotest.(check bool)
        (Printf.sprintf "single sample in bucket at q%.2f" q)
        true
        (0.003 >= lo && 0.003 <= hi))
    [ 0.01; 0.5; 1.0 ];
  Alcotest.(check (float 1e-12)) "single mean exact" 0.003
    (Metrics.histogram_mean single);

  let equal = Metrics.histogram r "test.equal" in
  for _ = 1 to 500 do Metrics.observe equal 0.02 done;
  let p50 = Metrics.quantile equal 0.5 and p99 = Metrics.quantile equal 0.99 in
  Alcotest.(check (float 1e-12)) "all-equal: p50 = p99" p50 p99;
  let lo, hi = Metrics.quantile_bounds equal 0.99 in
  Alcotest.(check bool) "all-equal: bucket holds the value" true
    (0.02 >= lo && 0.02 <= hi);

  (* Out-of-range samples land in the underflow/overflow buckets; the
     overflow bucket reports the exact maximum, not a midpoint. *)
  let extreme = Metrics.histogram r "test.extreme" in
  Metrics.observe extreme 1e-9;
  Metrics.observe extreme 5000.0;
  Alcotest.(check int) "extremes counted" 2 (Metrics.histogram_count extreme);
  Alcotest.(check (float 1e-9)) "overflow quantile is the exact max" 5000.0
    (Metrics.quantile extreme 1.0)

(* --- trace ring ------------------------------------------------------ *)

let test_trace_ring () =
  let t = Trace.create ~capacity:8 () in
  for i = 1 to 20 do
    Trace.record t (Trace.Note (Printf.sprintf "event %d" i))
  done;
  Alcotest.(check int) "all offers counted" 20 (Trace.recorded t);
  Alcotest.(check int) "overwritten events counted as dropped" 12
    (Trace.dropped t);
  let recent = Trace.recent t in
  Alcotest.(check int) "ring retains capacity" 8 (List.length recent);
  let notes =
    List.map (function _, Trace.Note s -> s | _ -> assert false) recent
  in
  Alcotest.(check (list string)) "oldest first, newest last"
    (List.init 8 (fun i -> Printf.sprintf "event %d" (i + 13)))
    notes;
  Alcotest.(check int) "recent ~n:3" 3 (List.length (Trace.recent ~n:3 t));
  (* Entries render. *)
  List.iter
    (fun entry ->
      Alcotest.(check bool) "entry renders" true
        (String.length (Fmt.str "%a" Trace.pp_entry entry) > 0))
    recent

let test_noop_inert () =
  let h = Hub.noop in
  Alcotest.(check bool) "noop registry is not live" false
    (Metrics.live h.Hub.metrics);
  let c = Metrics.counter h.Hub.metrics "ignored" in
  Metrics.incr c;
  Metrics.add c 41;
  Alcotest.(check int) "noop counter stays 0" 0 (Metrics.counter_value c);
  let g = Metrics.gauge h.Hub.metrics "ignored" in
  Metrics.set_gauge g 9.0;
  Alcotest.(check (float 0.0)) "noop gauge stays 0" 0.0 (Metrics.gauge_value g);
  let hist = Metrics.histogram h.Hub.metrics "ignored" in
  Metrics.observe hist 1.0;
  Alcotest.(check int) "noop histogram stays empty" 0
    (Metrics.histogram_count hist);
  Hub.event h (Trace.Note "ignored");
  Alcotest.(check int) "noop trace records nothing" 0 (Trace.recorded h.Hub.trace);
  Alcotest.(check int) "noop trace retains nothing" 0
    (List.length (Trace.recent h.Hub.trace));
  let snap = Metrics.snapshot h.Hub.metrics in
  Alcotest.(check int) "noop snapshot is empty" 0
    (List.length snap.Metrics.counters)

(* --- snapshots ------------------------------------------------------- *)

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_snapshot_json () =
  let r = Metrics.create () in
  Metrics.add (Metrics.counter r "b.count") 3;
  Metrics.incr (Metrics.counter r "a.count");
  Metrics.set_gauge (Metrics.gauge r "g.level") 2.5;
  Metrics.observe (Metrics.histogram r "h.lat") 0.01;
  let snap = Metrics.snapshot r in
  Alcotest.(check (list string)) "counters sorted by name"
    [ "a.count"; "b.count" ]
    (List.map fst snap.Metrics.counters);
  let text = Fmt.str "%a" Metrics.pp_snapshot snap in
  Alcotest.(check bool) "text snapshot renders every name" true
    (List.for_all (fun n -> contains ~needle:n text)
       [ "a.count"; "b.count"; "g.level"; "h.lat" ]);
  let json = Metrics.snapshot_to_json snap in
  Alcotest.(check bool) "json mentions every instrument" true
    (List.for_all (fun n -> contains ~needle:("\"" ^ n ^ "\"") json)
       [ "a.count"; "b.count"; "g.level"; "h.lat" ]);
  Alcotest.(check bool) "json is an object" true
    (String.length json > 2 && json.[0] = '{' && json.[String.length json - 1] = '}');
  (* An empty histogram's nan quantiles must serialize as null, never as
     the invalid bare token [nan]. *)
  Metrics.histogram r "h.empty" |> ignore;
  let json = Metrics.snapshot_to_json (Metrics.snapshot r) in
  Alcotest.(check bool) "nan serializes as null" false
    (contains ~needle:"nan" json)

let suite =
  [
    Alcotest.test_case "clock is monotone" `Quick test_clock_monotone;
    Alcotest.test_case "manual clock" `Quick test_manual_clock;
    Alcotest.test_case "counters under threads" `Quick test_counter_threads;
    Alcotest.test_case "gauges" `Quick test_gauge;
    Alcotest.test_case "histogram vs exact quantiles" `Quick test_histogram_vs_exact;
    Alcotest.test_case "histogram edge cases" `Quick test_histogram_edges;
    Alcotest.test_case "trace ring overflow" `Quick test_trace_ring;
    Alcotest.test_case "noop hub is inert" `Quick test_noop_inert;
    Alcotest.test_case "snapshot text and json" `Quick test_snapshot_json;
  ]
