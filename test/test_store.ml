(* Replicated key-value store: one-copy equivalence under failures,
   partitions and recoveries. *)

open Helpers
module Kv = Dynvote_store.Replicated_kv

let universe = ss [ 0; 1; 2 ]

let make () = Kv.create ~universe ()

let ok = function Ok v -> v | Error e -> Alcotest.failf "unexpected error: %a" Kv.pp_error e

let test_put_get () =
  let kv = make () in
  ok (Kv.put kv ~at:0 "k" "v1");
  Alcotest.(check (option string)) "reads back" (Some "v1") (ok (Kv.get kv ~at:2 "k"));
  ok (Kv.put kv ~at:1 "k" "v2");
  Alcotest.(check (option string)) "reads newest" (Some "v2") (ok (Kv.get kv ~at:0 "k"));
  Alcotest.(check (option string)) "unwritten key" None (ok (Kv.get kv ~at:0 "other"));
  Alcotest.(check int) "granted writes" 2 (Kv.granted_writes kv)

let test_independent_keys () =
  let kv = make () in
  ok (Kv.put kv ~at:0 "a" "1");
  ok (Kv.put kv ~at:1 "b" "2");
  Alcotest.(check (option string)) "a" (Some "1") (ok (Kv.get kv ~at:2 "a"));
  Alcotest.(check (option string)) "b" (Some "2") (ok (Kv.get kv ~at:2 "b"));
  Alcotest.(check int) "two keys" 2 (List.length (Kv.keys kv))

let test_errors () =
  let kv = make () in
  (match Kv.get kv ~at:7 "k" with
  | Error `Not_a_copy_site -> ()
  | _ -> Alcotest.fail "expected Not_a_copy_site");
  Kv.fail kv 0;
  (match Kv.put kv ~at:0 "k" "v" with
  | Error `Site_down -> ()
  | _ -> Alcotest.fail "expected Site_down");
  Kv.fail kv 1;
  Kv.fail kv 2;
  Alcotest.(check int) "denials counted" 2 (Kv.denied kv)

let test_partition_minority_rejected () =
  let kv = make () in
  ok (Kv.put kv ~at:0 "k" "v1");
  Kv.partition kv [ ss [ 0; 1 ]; ss [ 2 ] ];
  ok (Kv.put kv ~at:0 "k" "v2");
  (match Kv.get kv ~at:2 "k" with
  | Error `Unavailable -> ()
  | Ok v -> Alcotest.failf "minority read succeeded with %a" Fmt.(option string) v
  | Error e -> Alcotest.failf "wrong error: %a" Kv.pp_error e);
  Kv.heal kv;
  Alcotest.(check (option string)) "after heal, sees v2" (Some "v2")
    (ok (Kv.get kv ~at:2 "k"))

let test_recovery_rejoins_keys () =
  let kv = make () in
  ok (Kv.put kv ~at:0 "x" "1");
  ok (Kv.put kv ~at:0 "y" "2");
  Kv.fail kv 2;
  ok (Kv.put kv ~at:0 "x" "10");
  Alcotest.(check int) "rejoined both keys" 2 (Kv.recover kv 2);
  (* Now 0 and 1 fail; site 2 must carry both keys alone (it holds the
     newest data and, with |P| = 3... it does not: {2} is 1 of 3).  The
     point: recovery made 2 current, so after 0 returns, {0,2} has a
     majority. *)
  Kv.fail kv 0;
  Kv.fail kv 1;
  (match Kv.get kv ~at:2 "x" with
  | Error `Unavailable -> ()
  | _ -> Alcotest.fail "lone copy should not serve under LDV");
  ignore (Kv.recover kv 0);
  Alcotest.(check (option string)) "pair serves newest" (Some "10")
    (ok (Kv.get kv ~at:2 "x"))

(* End-to-end demonstration of the paper-literal TDV unsafety (DESIGN.md
   §3): a stale restarted site resurrects the file by claiming its dead
   segment-mates and a later read returns data older than a committed
   write — the safe flavor refuses the resurrection instead. *)
let fork_scenario flavor =
  let kv = Kv.create ~flavor ~segment_of:(fun _ -> 0) ~universe () in
  ok (Kv.put kv ~at:0 "k" "old");
  (* 0 and 1 die; 2 continues alone by claiming their votes (both
     flavors allow this: 2 is fresh). *)
  Kv.fail kv 0;
  Kv.fail kv 1;
  let continued = Kv.put kv ~at:2 "k" "new" in
  (* Then 2 dies too and only 0 restarts, stale. *)
  Kv.fail kv 2;
  ignore (Kv.recover kv 0);
  (continued, Kv.get kv ~at:0 "k", Kv.oracle kv "k")

let test_paper_flavor_forks () =
  match fork_scenario Decision.tdv_flavor with
  | Ok (), Ok (Some value), Some oracle ->
      (* The read is granted — and returns stale data: the split brain. *)
      Alcotest.(check string) "oracle is the claimed write" "new" oracle;
      Alcotest.(check string) "paper flavor serves stale data" "old" value
  | _ -> Alcotest.fail "unexpected shape (grants changed?)"

let test_safe_flavor_refuses () =
  match fork_scenario Decision.tdv_safe_flavor with
  | Ok (), Error `Unavailable, Some _ ->
      (* Same history: the rival-lineage guard makes the stale restart
         wait for a site that actually saw the newest write. *)
      ()
  | Ok (), Ok v, _ ->
      Alcotest.failf "safe flavor granted a stale read of %a" Fmt.(option string) v
  | _ -> Alcotest.fail "unexpected shape"

let test_consistency_checker_clean () =
  let kv = make () in
  ok (Kv.put kv ~at:0 "k" "v");
  Kv.fail kv 1;
  ok (Kv.put kv ~at:0 "k" "w");
  ignore (Kv.recover kv 1);
  Alcotest.(check int) "no violations" 0 (List.length (Kv.check_consistency kv))

(* Random histories: every granted read returns the oracle value (one-copy
   equivalence), and the consistency checker stays clean — under both LDV
   and safe topological flavors. *)
let random_history flavor segment_of script =
  let kv = Kv.create ~flavor ~segment_of ~universe () in
  let counter = ref 0 in
  let ok_history = ref true in
  List.iter
    (fun cmd ->
      let site = cmd mod 3 in
      match cmd / 3 mod 5 with
      | 0 -> Kv.fail kv site
      | 1 -> if not (Site_set.mem site (Kv.up_sites kv)) then ignore (Kv.recover kv site)
      | 2 ->
          if Site_set.mem site (Kv.up_sites kv) then begin
            incr counter;
            ignore (Kv.put kv ~at:site "k" (string_of_int !counter))
          end
      | 3 -> (
          if Site_set.mem site (Kv.up_sites kv) then
            match Kv.get kv ~at:site "k" with
            | Ok value -> if value <> Kv.oracle kv "k" then ok_history := false
            | Error _ -> ())
      | _ ->
          (* Toggle a partition isolating [site]. *)
          if cmd mod 2 = 0 then
            Kv.partition kv [ Site_set.remove site universe; Site_set.singleton site ]
          else Kv.heal kv)
    script;
  !ok_history && Kv.check_consistency kv = []

let seg_pairs site = if site <= 1 then 0 else 1

let props =
  [
    qcheck_case ~count:100 ~name:"one-copy equivalence (LDV)"
      QCheck.(list_of_size (Gen.int_range 1 60) (int_bound 999))
      (random_history Decision.ldv_flavor (fun _ -> 0));
    qcheck_case ~count:100 ~name:"one-copy equivalence (safe TDV, segmented)"
      QCheck.(list_of_size (Gen.int_range 1 60) (int_bound 999))
      (fun script ->
        (* Partitions in the script isolate one site; that is only legal
           for the topological flavor if the site sits alone on a segment,
           so give each site its own segment here. *)
        random_history Decision.tdv_safe_flavor (fun s -> s) script);
    qcheck_case ~count:100 ~name:"one-copy equivalence (safe TDV, shared segment, no partitions)"
      QCheck.(list_of_size (Gen.int_range 1 60) (int_bound 999))
      (fun script ->
        (* On one shared segment partitions cannot happen: strip partition
           commands (map them to heal). *)
        let script = List.map (fun c -> if c / 3 mod 5 = 4 then 1000 + 1 else c) script in
        random_history Decision.tdv_safe_flavor (fun _ -> 0) script);
    (* Mixed topology: sites 0 and 1 share a segment, 2 is alone; the only
       legal partition separates {0,1} from {2}.  This is the setting
       where claims, ties and the rival guard all interact. *)
    qcheck_case ~count:150 ~name:"one-copy equivalence (safe TDV, paired segments)"
      QCheck.(list_of_size (Gen.int_range 1 60) (int_bound 999))
      (fun script ->
        let kv =
          Kv.create ~flavor:Decision.tdv_safe_flavor
            ~segment_of:(fun s -> if s <= 1 then 0 else 1)
            ~universe ()
        in
        let counter = ref 0 in
        let ok_history = ref true in
        List.iter
          (fun cmd ->
            let site = cmd mod 3 in
            match cmd / 3 mod 5 with
            | 0 -> Kv.fail kv site
            | 1 ->
                if not (Site_set.mem site (Kv.up_sites kv)) then
                  ignore (Kv.recover kv site)
            | 2 ->
                if Site_set.mem site (Kv.up_sites kv) then begin
                  incr counter;
                  ignore (Kv.put kv ~at:site "k" (string_of_int !counter))
                end
            | 3 -> (
                if Site_set.mem site (Kv.up_sites kv) then
                  match Kv.get kv ~at:site "k" with
                  | Ok value -> if value <> Kv.oracle kv "k" then ok_history := false
                  | Error _ -> ())
            | _ ->
                if cmd mod 2 = 0 then
                  Kv.partition kv [ ss [ 0; 1 ]; ss [ 2 ] ]
                else Kv.heal kv)
          script;
        !ok_history && Kv.check_consistency kv = []);
  ]

let suite =
  [
    Alcotest.test_case "put/get" `Quick test_put_get;
    Alcotest.test_case "independent keys" `Quick test_independent_keys;
    Alcotest.test_case "error cases" `Quick test_errors;
    Alcotest.test_case "partition minority rejected" `Quick test_partition_minority_rejected;
    Alcotest.test_case "recovery rejoins keys" `Quick test_recovery_rejoins_keys;
    Alcotest.test_case "consistency checker clean" `Quick test_consistency_checker_clean;
    Alcotest.test_case "paper TDV forks end-to-end" `Quick test_paper_flavor_forks;
    Alcotest.test_case "safe TDV refuses the fork" `Quick test_safe_flavor_refuses;
  ]
  @ props
