(* Extension policies: strict MCV, weighted voting, the Jajodia-Mutchler
   integer protocol, available copy, witnesses. *)

open Helpers

let ordering = Ordering.default 8
let one_segment = fun _ -> 0
let view components = { Policy.components = List.map ss components }

let test_strict_mcv () =
  let d = Policy_extra.strict_mcv ~universe:(ss [ 0; 1; 2; 3 ]) in
  Alcotest.(check bool) "3 of 4" true (d.Driver.available (view [ [ 0; 1; 2 ] ]));
  (* Unlike the tie-breaking MCV, an exact half is never enough. *)
  Alcotest.(check bool) "2 of 4 with max" false (d.Driver.available (view [ [ 0; 1 ] ]));
  Alcotest.(check bool) "2 of 4 without max" false (d.Driver.available (view [ [ 2; 3 ] ]))

let test_weighted_mcv () =
  (* Site 0 carries 2 votes; total 5; quorum > 2.5 means 3 votes. *)
  let weights = [| 2; 1; 1; 1; 0; 0; 0; 0 |] in
  let d =
    Policy_extra.weighted_mcv ~weights ~universe:(ss [ 0; 1; 2; 3 ]) ~ordering ()
  in
  Alcotest.(check bool) "site 0 + any = 3 votes" true (d.Driver.available (view [ [ 0; 1 ] ]));
  Alcotest.(check bool) "three weak sites = 3 votes" true
    (d.Driver.available (view [ [ 1; 2; 3 ] ]));
  Alcotest.(check bool) "two weak sites = 2 votes" false
    (d.Driver.available (view [ [ 2; 3 ] ]));
  Alcotest.(check bool) "site 0 alone = 2 votes" false (d.Driver.available (view [ [ 0 ] ]))

let test_weighted_mcv_even_total_tie () =
  (* Equal weights, total 4: an exact half holding the max site wins. *)
  let weights = [| 1; 1; 1; 1; 0; 0; 0; 0 |] in
  let d =
    Policy_extra.weighted_mcv ~weights ~universe:(ss [ 0; 1; 2; 3 ]) ~ordering ()
  in
  Alcotest.(check bool) "half with max" true (d.Driver.available (view [ [ 0; 3 ] ]));
  Alcotest.(check bool) "half without max" false (d.Driver.available (view [ [ 1; 2 ] ]));
  let strict =
    Policy_extra.weighted_mcv ~tie_break:false ~weights ~universe:(ss [ 0; 1; 2; 3 ])
      ~ordering ()
  in
  Alcotest.(check bool) "no tie-break" false (strict.Driver.available (view [ [ 0; 3 ] ]))

let test_weighted_validation () =
  Alcotest.check_raises "negative weight"
    (Invalid_argument "Policy_extra.weighted_mcv: bad weight vector") (fun () ->
      ignore
        (Policy_extra.weighted_mcv ~weights:[| -1; 1 |] ~universe:(ss [ 0; 1 ]) ~ordering ()))

(* JM-DV must match plain DV on every availability decision along random
   event histories (their difference is representation, not behaviour). *)
let prop_jm_dv_equals_dv =
  qcheck_case ~count:300 ~name:"JM-DV ≡ DV along random histories"
    QCheck.(list_of_size (Gen.int_range 1 40) (int_bound 31))
    (fun masks ->
      let universe = ss [ 0; 1; 2; 3; 4 ] in
      let dv =
        Driver.of_policy
          (Policy.create Policy.Dv ~universe ~n_sites:8 ~segment_of:one_segment ~ordering)
      in
      let jm = Policy_extra.jm_dv ~universe ~n_sites:8 in
      List.for_all
        (fun mask ->
          let live = Site_set.inter (Site_set.of_int_unsafe mask) universe in
          let v = { Policy.components = (if Site_set.is_empty live then [] else [ live ]) } in
          dv.Driver.on_topology_change v;
          jm.Driver.on_topology_change v;
          dv.Driver.available v = jm.Driver.available v)
        masks)

(* Weighted dynamic voting: with unit weights it must coincide with LDV
   on every decision along any history. *)
let prop_wdv_unit_weights_equals_ldv =
  qcheck_case ~count:200 ~name:"WDV with unit weights ≡ LDV"
    QCheck.(list_of_size (Gen.int_range 1 40) (int_bound 31))
    (fun masks ->
      let universe = ss [ 0; 1; 2; 3; 4 ] in
      let ldv =
        Driver.of_policy
          (Policy.create Policy.Ldv ~universe ~n_sites:8 ~segment_of:one_segment ~ordering)
      in
      let wdv =
        Policy_extra.weighted_dv ~weights:(Array.make 8 1) ~universe ~n_sites:8 ~ordering ()
      in
      List.for_all
        (fun mask ->
          let live = Site_set.inter (Site_set.of_int_unsafe mask) universe in
          let v = { Policy.components = (if Site_set.is_empty live then [] else [ live ]) } in
          ldv.Driver.on_topology_change v;
          wdv.Driver.on_topology_change v;
          ldv.Driver.available v = wdv.Driver.available v)
        masks)

let test_wdv_weight_dominance () =
  (* Site 0 carries 3 votes out of 5: its group always wins; quorums still
     adjust dynamically when it is down. *)
  let weights = [| 3; 1; 1; 0; 0; 0; 0; 0 |] in
  let d = Policy_extra.weighted_dv ~weights ~universe:(ss [ 0; 1; 2 ]) ~n_sites:8 ~ordering () in
  d.Driver.on_topology_change (view [ [ 0 ]; [ 1; 2 ] ]);
  Alcotest.(check bool) "heavy site alone wins" true
    (d.Driver.available { Policy.components = [ ss [ 0 ] ] });
  Alcotest.(check bool) "light pair loses" false
    (d.Driver.available { Policy.components = [ ss [ 1; 2 ] ] });
  (* Site 0 fails with the quorum at {0,1,2}; 2 of 5 votes is not enough... *)
  let d = Policy_extra.weighted_dv ~weights ~universe:(ss [ 0; 1; 2 ]) ~n_sites:8 ~ordering () in
  d.Driver.on_topology_change (view [ [ 1; 2 ] ]);
  Alcotest.(check bool) "survivors below weighted majority" false
    (d.Driver.available (view [ [ 1; 2 ] ]))

let test_wdv_quorum_adjusts () =
  (* After the heavy site's group operates alone, the quorum is just {0};
     when 0 then dies, nobody can proceed until it returns. *)
  let weights = [| 3; 1; 1; 0; 0; 0; 0; 0 |] in
  let d = Policy_extra.weighted_dv ~weights ~universe:(ss [ 0; 1; 2 ]) ~n_sites:8 ~ordering () in
  d.Driver.on_topology_change (view [ [ 0 ]; [ 1; 2 ] ]);
  d.Driver.on_topology_change (view [ [ 1; 2 ] ]);
  Alcotest.(check bool) "its quorum died with it" false (d.Driver.available (view [ [ 1; 2 ] ]));
  (* 0 returns: its singleton quorum is immediately a majority of itself. *)
  d.Driver.on_topology_change (view [ [ 0; 1; 2 ] ]);
  Alcotest.(check bool) "back with the heavy site" true
    (d.Driver.available (view [ [ 0; 1; 2 ] ]))

let test_wdv_validation () =
  Alcotest.check_raises "negative weight"
    (Invalid_argument "Policy_extra.weighted_dv: bad weight vector") (fun () ->
      ignore
        (Policy_extra.weighted_dv ~weights:[| -1 |] ~universe:(ss [ 0 ]) ~n_sites:1
           ~ordering ()))

let test_available_copy_single_segment () =
  let ac, d = Policy_extra.available_copy ~universe:(ss [ 0; 1; 2 ]) in
  (* One copy left: still available. *)
  d.Driver.on_topology_change (view [ [ 2 ] ]);
  Alcotest.(check bool) "one copy suffices" true (d.Driver.available (view [ [ 2 ] ]));
  (* All copies down: unavailable... *)
  d.Driver.on_topology_change (view []);
  Alcotest.(check bool) "none up" false (d.Driver.available (view []));
  (* ...and a returning non-current copy does not resurrect the file. *)
  d.Driver.on_topology_change (view [ [ 0 ] ]);
  Alcotest.(check bool) "stale copy alone" false (d.Driver.available (view [ [ 0 ] ]));
  (* The last current copy (2) returns: available again, and 0 syncs. *)
  d.Driver.on_topology_change (view [ [ 0; 2 ] ]);
  Alcotest.(check bool) "current copy back" true (d.Driver.available (view [ [ 0; 2 ] ]));
  Alcotest.(check int) "no violations on one segment" 0
    (Policy_extra.Available_copy.violations ac)

let test_available_copy_partition_violation () =
  let ac, d = Policy_extra.available_copy ~universe:(ss [ 0; 1; 2; 3 ]) in
  (* A partition splits current copies into two groups: both sides think
     they may proceed — the violation TDV's segment rule avoids. *)
  d.Driver.on_topology_change (view [ [ 0; 1 ]; [ 2; 3 ] ]);
  Alcotest.(check bool) "left side up" true
    (d.Driver.available { Policy.components = [ ss [ 0; 1 ] ] });
  Alcotest.(check bool) "right side up too" true
    (d.Driver.available { Policy.components = [ ss [ 2; 3 ] ] });
  Alcotest.(check bool) "violation recorded" true
    (Policy_extra.Available_copy.violations ac > 0)

let test_witness_basics () =
  (* Two data copies (0, 1) plus one witness (2): behaves like three-site
     LDV as long as a data copy is present. *)
  let d =
    Policy_extra.witness ~data_sites:(ss [ 0; 1 ]) ~witnesses:(ss [ 2 ]) ~n_sites:8
      ~segment_of:one_segment ~ordering ()
  in
  Alcotest.(check bool) "all three" true (d.Driver.available (view [ [ 0; 1; 2 ] ]));
  (* Copy 0 + witness: a majority, with data present. *)
  d.Driver.on_topology_change (view [ [ 0; 2 ] ]);
  Alcotest.(check bool) "copy + witness" true (d.Driver.available (view [ [ 0; 2 ] ]));
  (* Witness alone: quorum may be formable later but there is no data. *)
  d.Driver.on_topology_change (view [ [ 2 ] ]);
  Alcotest.(check bool) "witness alone" false (d.Driver.available (view [ [ 2 ] ]))

let test_witness_prevents_stale_read () =
  (* One data copy, two witnesses: the witnesses alone can assemble a vote
     majority, but without the data copy the access must still be denied. *)
  let d =
    Policy_extra.witness ~data_sites:(ss [ 0 ]) ~witnesses:(ss [ 1; 2 ]) ~n_sites:8
      ~segment_of:one_segment ~ordering ()
  in
  d.Driver.on_topology_change (view [ [ 1; 2 ] ]);
  Alcotest.(check bool) "vote majority without data denied" false
    (d.Driver.available (view [ [ 1; 2 ] ]));
  (* The data copy returns: available again. *)
  d.Driver.on_topology_change (view [ [ 0; 1; 2 ] ]);
  Alcotest.(check bool) "data copy back" true (d.Driver.available (view [ [ 0; 1; 2 ] ]))

let test_witness_optimistic_path () =
  (* The optimistic witness variant defers quorum adjustment to access
     time, like ODV. *)
  let d =
    Policy_extra.witness ~optimistic:true ~data_sites:(ss [ 0; 1 ]) ~witnesses:(ss [ 2 ])
      ~n_sites:8 ~segment_of:one_segment ~ordering ()
  in
  Alcotest.(check bool) "flagged optimistic" true d.Driver.optimistic;
  (* Site 0 fails: no adjustment yet (topology changes are ignored). *)
  d.Driver.on_topology_change (view [ [ 1; 2 ] ]);
  Alcotest.(check bool) "still available on stale quorum" true
    (d.Driver.available (view [ [ 1; 2 ] ]));
  (* An access commits the shrink to {1, 2}; site 1 now ranks highest in
     the quorum, so it carries the tie alone while the witness does not. *)
  Alcotest.(check bool) "access granted" true (d.Driver.on_access (view [ [ 1; 2 ] ]));
  Alcotest.(check bool) "copy 1 carries the tie" true (d.Driver.available (view [ [ 1 ] ]));
  Alcotest.(check bool) "witness alone loses the tie" false
    (d.Driver.available (view [ [ 2 ] ]))

let test_jm_dv_multiple_components () =
  let universe = ss [ 0; 1; 2; 3 ] in
  let d = Policy_extra.jm_dv ~universe ~n_sites:8 in
  (* A 2-2 split: plain cardinality voting cannot proceed on either side. *)
  d.Driver.on_topology_change (view [ [ 0; 1 ]; [ 2; 3 ] ]);
  Alcotest.(check bool) "left tie" false
    (d.Driver.available { Policy.components = [ ss [ 0; 1 ] ] });
  Alcotest.(check bool) "right tie" false
    (d.Driver.available { Policy.components = [ ss [ 2; 3 ] ] });
  (* Heal: the full set is again a majority of its stored cardinality. *)
  d.Driver.on_topology_change (view [ [ 0; 1; 2; 3 ] ]);
  Alcotest.(check bool) "healed" true (d.Driver.available (view [ [ 0; 1; 2; 3 ] ]))

let test_witness_validation () =
  Alcotest.check_raises "overlap"
    (Invalid_argument "Policy_extra.witness: a site cannot be both copy and witness")
    (fun () ->
      ignore
        (Policy_extra.witness ~data_sites:(ss [ 0 ]) ~witnesses:(ss [ 0 ]) ~n_sites:8
           ~segment_of:one_segment ~ordering ()))

let suite =
  [
    Alcotest.test_case "strict MCV" `Quick test_strict_mcv;
    Alcotest.test_case "weighted MCV" `Quick test_weighted_mcv;
    Alcotest.test_case "weighted MCV tie rule" `Quick test_weighted_mcv_even_total_tie;
    Alcotest.test_case "weighted validation" `Quick test_weighted_validation;
    Alcotest.test_case "available copy, one segment" `Quick test_available_copy_single_segment;
    Alcotest.test_case "available copy violates on partition" `Quick
      test_available_copy_partition_violation;
    Alcotest.test_case "witness basics" `Quick test_witness_basics;
    Alcotest.test_case "witness prevents stale reads" `Quick test_witness_prevents_stale_read;
    Alcotest.test_case "witness validation" `Quick test_witness_validation;
    Alcotest.test_case "witness optimistic path" `Quick test_witness_optimistic_path;
    Alcotest.test_case "JM-DV across components" `Quick test_jm_dv_multiple_components;
    prop_jm_dv_equals_dv;
    prop_wdv_unit_weights_equals_ldv;
    Alcotest.test_case "WDV weight dominance" `Quick test_wdv_weight_dominance;
    Alcotest.test_case "WDV quorum adjusts" `Quick test_wdv_quorum_adjusts;
    Alcotest.test_case "WDV validation" `Quick test_wdv_validation;
  ]
