(* Network model: the Figure 8 topology, reachability under failures,
   partition enumeration. *)

open Helpers
module Topology = Dynvote_net.Topology
module Connectivity = Dynvote_net.Connectivity
module Partition_enum = Dynvote_net.Partition_enum

let ucsd = Topology.ucsd
let conn = Connectivity.create ucsd
let all = Topology.all_sites ucsd

let components ~up = Connectivity.components conn ~up:(ss up)

let test_ucsd_shape () =
  Alcotest.(check int) "8 sites" 8 (Topology.n_sites ucsd);
  Alcotest.(check int) "3 segments" 3 (Topology.n_segments ucsd);
  Alcotest.check set_testable "alpha holds sites 1-5" (ss [ 0; 1; 2; 3; 4 ])
    (Topology.sites_on_segment ucsd 0);
  Alcotest.check set_testable "beta holds site 6" (ss [ 5 ]) (Topology.sites_on_segment ucsd 1);
  Alcotest.check set_testable "gamma holds sites 7-8" (ss [ 6; 7 ])
    (Topology.sites_on_segment ucsd 2);
  Alcotest.check set_testable "gateways are 4 and 5" (ss [ 3; 4 ]) (Topology.gateways ucsd);
  Alcotest.(check string) "site names" "wizard" (Topology.site_name ucsd 3)

let test_all_up_single_component () =
  match components ~up:[ 0; 1; 2; 3; 4; 5; 6; 7 ] with
  | [ c ] -> Alcotest.check set_testable "everyone" all c
  | cs -> Alcotest.failf "expected one component, got %d" (List.length cs)

let test_gateway_failure_partitions () =
  (* Site 4 (id 3) down: beta (site 6 = id 5) is cut off. *)
  let cs = components ~up:[ 0; 1; 2; 4; 5; 6; 7 ] in
  Alcotest.(check int) "two components" 2 (List.length cs);
  Alcotest.(check bool) "beta isolated" true
    (List.exists (fun c -> Site_set.equal c (ss [ 5 ])) cs);
  Alcotest.(check bool) "rest together" true
    (List.exists (fun c -> Site_set.equal c (ss [ 0; 1; 2; 4; 6; 7 ])) cs)

let test_both_gateways_down () =
  let cs = components ~up:[ 0; 1; 2; 5; 6; 7 ] in
  Alcotest.(check int) "three components" 3 (List.length cs);
  List.iter
    (fun expected ->
      Alcotest.(check bool)
        (Fmt.str "component %a" Site_set.pp expected)
        true
        (List.exists (Site_set.equal expected) cs))
    [ ss [ 0; 1; 2 ]; ss [ 5 ]; ss [ 6; 7 ] ]

let test_non_gateway_failures_never_partition () =
  (* Failing any subset of non-gateway sites leaves one component. *)
  let non_gateways = [ 0; 1; 2; 5; 6; 7 ] in
  List.iter
    (fun down ->
      let up = List.filter (fun s -> not (List.mem s down)) [ 0; 1; 2; 3; 4; 5; 6; 7 ] in
      let cs = components ~up in
      Alcotest.(check int)
        (Fmt.str "down=%a" Fmt.(list int) down)
        1 (List.length cs))
    [ [ 0 ]; [ 1; 2 ]; [ 5 ]; [ 6; 7 ]; non_gateways ]

let test_connected_pairs () =
  let up = Site_set.remove 3 (Site_set.universe 8) in
  Alcotest.(check bool) "1-2 connected" true (Connectivity.connected conn ~up 0 1);
  Alcotest.(check bool) "1-6 cut" false (Connectivity.connected conn ~up 0 5);
  Alcotest.(check bool) "7-8 connected via gamma" true (Connectivity.connected conn ~up 6 7);
  Alcotest.(check bool) "down site unreachable" false
    (Connectivity.connected conn ~up 3 0);
  Alcotest.check set_testable "component of 6 and 8"
    (ss [ 0; 1; 2; 4; 6; 7 ])
    (Connectivity.component_of conn ~up 7);
  Alcotest.check set_testable "component of down site" Site_set.empty
    (Connectivity.component_of conn ~up 3)

let test_is_partitioned () =
  let up = Site_set.remove 3 (Site_set.universe 8) in
  Alcotest.(check bool) "copies {1,2,6} split by site 4" true
    (Connectivity.is_partitioned conn ~up ~among:(ss [ 0; 1; 5 ]));
  Alcotest.(check bool) "copies {1,2,4} not split" false
    (Connectivity.is_partitioned conn ~up ~among:(ss [ 0; 1; 3 ]))

(* §3 example: copies A, B on alpha; C alone behind gateway X; D alone
   behind gateway Y.  The only partitions are {{A,B,C},{D}}, {{A,B,D},{C}}
   and {{A,B},{C},{D}}. *)
let section3_topology =
  Topology.create
    ~site_names:[| "A"; "B"; "C"; "D"; "X"; "Y" |]
    ~n_segments:3
    ~home_segment:[| 0; 0; 1; 2; 0; 0 |]
    ~bridges:
      [ { Topology.gateway = 4; segment_a = 0; segment_b = 1 };
        { Topology.gateway = 5; segment_a = 0; segment_b = 2 } ]
    ()

let test_section3_partition_enumeration () =
  let among = ss [ 0; 1; 2; 3 ] in
  let partitions = Partition_enum.gateway_partitions section3_topology ~among in
  let canon groups =
    List.sort compare (List.map Site_set.to_list groups)
  in
  let got = List.sort compare (List.map canon partitions) in
  let expected =
    List.sort compare
      [
        canon [ ss [ 0; 1; 2; 3 ] ];            (* no failure *)
        canon [ ss [ 0; 1; 2 ]; ss [ 3 ] ];     (* Y down *)
        canon [ ss [ 0; 1; 3 ]; ss [ 2 ] ];     (* X down *)
        canon [ ss [ 0; 1 ]; ss [ 2 ]; ss [ 3 ] ] (* both down *);
      ]
  in
  Alcotest.(check bool) "exactly the paper's three partitions (plus intact)" true
    (got = expected)

let test_partition_points () =
  (* Configuration B {1,2,6}: single partition point at site 4 (id 3). *)
  Alcotest.check set_testable "config B" (ss [ 3 ])
    (Partition_enum.partition_points ucsd ~among:(ss [ 0; 1; 5 ]));
  (* Configuration C {1,6,8}: partition points at sites 4 and 5. *)
  Alcotest.check set_testable "config C" (ss [ 3; 4 ])
    (Partition_enum.partition_points ucsd ~among:(ss [ 0; 5; 7 ]));
  (* Configuration A {1,2,4}: no partitions possible. *)
  Alcotest.check set_testable "config A" Site_set.empty
    (Partition_enum.partition_points ucsd ~among:(ss [ 0; 1; 3 ]));
  Alcotest.(check bool) "config A cannot partition" false
    (Partition_enum.can_partition ucsd ~among:(ss [ 0; 1; 3 ]));
  (* Configuration D {6,7,8}: either gateway splits it. *)
  Alcotest.check set_testable "config D" (ss [ 3; 4 ])
    (Partition_enum.partition_points ucsd ~among:(ss [ 5; 6; 7 ]))

let test_topology_validation () =
  Alcotest.check_raises "gateway must touch its segments"
    (Invalid_argument "Topology: gateway must live on one of its bridged segments")
    (fun () ->
      ignore
        (Topology.create ~n_segments:3 ~home_segment:[| 0; 1; 2 |]
           ~bridges:[ { Topology.gateway = 0; segment_a = 1; segment_b = 2 } ]
           ()));
  Alcotest.check_raises "self bridge" (Invalid_argument "Topology: bridge loops a segment")
    (fun () ->
      ignore
        (Topology.create ~n_segments:2 ~home_segment:[| 0; 1 |]
           ~bridges:[ { Topology.gateway = 0; segment_a = 0; segment_b = 0 } ]
           ()))

let test_single_segment () =
  let t = Topology.single_segment 4 in
  let c = Connectivity.create t in
  Alcotest.(check int) "one component always" 1
    (List.length (Connectivity.components c ~up:(ss [ 0; 3 ])));
  Alcotest.(check bool) "cannot partition" false
    (Partition_enum.can_partition t ~among:(ss [ 0; 1; 2; 3 ]))

(* Random topologies: structural invariants over thousands of shapes. *)
module Topology_gen = Dynvote_net.Topology_gen

let prop_random_topologies_wellformed =
  Helpers.qcheck_case ~count:300 ~name:"random topologies are well-formed"
    QCheck.small_int
    (fun seed ->
      let rng = Dynvote_prng.Rng.of_seed seed in
      let t = Topology_gen.random rng in
      let c = Connectivity.create t in
      (* All-up: a tree of segments is connected. *)
      List.length (Connectivity.components c ~up:(Topology.all_sites t)) = 1)

let prop_non_gateways_never_partition =
  Helpers.qcheck_case ~count:300 ~name:"failing non-gateways never partitions"
    QCheck.small_int
    (fun seed ->
      let rng = Dynvote_prng.Rng.of_seed seed in
      let t = Topology_gen.random rng in
      let c = Connectivity.create t in
      let gateways = Topology.gateways t in
      let up =
        Site_set.filter
          (fun site -> Site_set.mem site gateways || Dynvote_prng.Rng.bool rng)
          (Topology.all_sites t)
      in
      List.length (Connectivity.components c ~up) <= 1
      || (* several components can only mean some are empty of... no:
            with all gateways up the segment graph is connected, so all
            live sites are mutually reachable. *)
      false)

let prop_components_partition_the_up_set =
  Helpers.qcheck_case ~count:300 ~name:"components partition the up set"
    QCheck.small_int
    (fun seed ->
      let rng = Dynvote_prng.Rng.of_seed seed in
      let t = Topology_gen.random rng in
      let c = Connectivity.create t in
      let up = Topology_gen.random_up_set rng t in
      let components = Connectivity.components c ~up in
      let union = List.fold_left Site_set.union Site_set.empty components in
      Site_set.equal union up
      && List.for_all
           (fun a ->
             List.for_all
               (fun b -> Site_set.equal a b || Site_set.disjoint a b)
               components)
           components)

let prop_same_segment_same_component =
  Helpers.qcheck_case ~count:300 ~name:"segment mates are never separated"
    QCheck.small_int
    (fun seed ->
      let rng = Dynvote_prng.Rng.of_seed seed in
      let t = Topology_gen.random rng in
      let c = Connectivity.create t in
      let up = Topology_gen.random_up_set rng t in
      let components = Connectivity.components c ~up in
      Site_set.for_all
        (fun a ->
          Site_set.for_all
            (fun b ->
              Topology.home_segment t a <> Topology.home_segment t b
              || List.exists
                   (fun comp -> Site_set.mem a comp && Site_set.mem b comp)
                   components)
            up)
        up)

let suite =
  [
    Alcotest.test_case "UCSD topology shape" `Quick test_ucsd_shape;
    Alcotest.test_case "all up: one component" `Quick test_all_up_single_component;
    Alcotest.test_case "gateway failure partitions" `Quick test_gateway_failure_partitions;
    Alcotest.test_case "both gateways down" `Quick test_both_gateways_down;
    Alcotest.test_case "non-gateways never partition" `Quick
      test_non_gateway_failures_never_partition;
    Alcotest.test_case "pairwise connectivity" `Quick test_connected_pairs;
    Alcotest.test_case "is_partitioned" `Quick test_is_partitioned;
    Alcotest.test_case "§3 partition enumeration" `Quick test_section3_partition_enumeration;
    Alcotest.test_case "partition points of configs" `Quick test_partition_points;
    Alcotest.test_case "topology validation" `Quick test_topology_validation;
    Alcotest.test_case "single segment" `Quick test_single_segment;
    prop_random_topologies_wellformed;
    prop_non_gateways_never_partition;
    prop_components_partition_the_up_set;
    prop_same_segment_same_component;
  ]
