(* Statistics: Welford accumulators, Student-t table, batch means,
   histograms. *)

open Helpers
module Welford = Dynvote_stats.Welford
module Student_t = Dynvote_stats.Student_t
module Batch_means = Dynvote_stats.Batch_means
module Histogram = Dynvote_stats.Histogram

let test_welford_against_direct () =
  let xs = [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ] in
  let w = Welford.create () in
  List.iter (Welford.add w) xs;
  check_float "mean" 5.0 (Welford.mean w);
  (* Direct two-pass: sum of squared deviations = 32; n-1 = 7. *)
  check_float_tol 1e-9 "variance" (32.0 /. 7.0) (Welford.variance w);
  check_float "min" 2.0 (Welford.min_value w);
  check_float "max" 9.0 (Welford.max_value w);
  Alcotest.(check int) "count" 8 (Welford.count w)

let test_welford_empty_and_single () =
  let w = Welford.create () in
  Alcotest.(check bool) "empty mean is nan" true (Float.is_nan (Welford.mean w));
  Welford.add w 3.0;
  check_float "single mean" 3.0 (Welford.mean w);
  Alcotest.(check bool) "single variance is nan" true (Float.is_nan (Welford.variance w))

let test_welford_merge () =
  let xs = List.init 100 (fun i -> float_of_int i *. 0.37) in
  let all = Welford.create () and left = Welford.create () and right = Welford.create () in
  List.iteri
    (fun i x ->
      Welford.add all x;
      if i < 40 then Welford.add left x else Welford.add right x)
    xs;
  let merged = Welford.merge left right in
  check_float_tol 1e-9 "merged mean" (Welford.mean all) (Welford.mean merged);
  check_float_tol 1e-9 "merged variance" (Welford.variance all) (Welford.variance merged);
  Alcotest.(check int) "merged count" 100 (Welford.count merged)

let test_welford_numerical_stability () =
  (* Large offset: naive sum-of-squares would lose all precision. *)
  let w = Welford.create () in
  List.iter (Welford.add w) [ 1e9 +. 4.0; 1e9 +. 7.0; 1e9 +. 13.0; 1e9 +. 16.0 ];
  check_float_tol 1e-6 "variance with large offset" 30.0 (Welford.variance w)

let test_student_t_values () =
  check_float_tol 1e-3 "df=1" 12.706 (Student_t.critical_975 1);
  check_float_tol 1e-3 "df=10" 2.228 (Student_t.critical_975 10);
  check_float_tol 1e-3 "df=30" 2.042 (Student_t.critical_975 30);
  check_float_tol 0.01 "df=60" 2.000 (Student_t.critical_975 60);
  check_float_tol 0.01 "df large ~ normal" 1.96 (Student_t.critical_975 10_000);
  check_float_tol 1e-3 "99% df=5" 4.032 (Student_t.critical_995 5);
  Alcotest.check_raises "df=0" (Invalid_argument "Student_t: degrees of freedom must be >= 1")
    (fun () -> ignore (Student_t.critical_975 0))

let test_student_t_monotone () =
  (* Critical values decrease with df. *)
  let prev = ref infinity in
  for df = 1 to 200 do
    let v = Student_t.critical_975 df in
    if v > !prev +. 1e-9 then Alcotest.failf "not monotone at df=%d" df;
    prev := v
  done

let test_batch_means_interval () =
  let b = Batch_means.create ~batch_length:100.0 in
  List.iter (Batch_means.add_batch b) [ 0.10; 0.12; 0.08; 0.11; 0.09 ];
  let iv = Batch_means.interval b in
  check_float_tol 1e-9 "mean" 0.10 iv.Batch_means.mean;
  (* s = sqrt(0.00025/1... deviations: 0, .02, -.02, .01, -.01 -> ss=0.001;
     var = 0.001/4 = 0.00025; se = sqrt(var/5); t(4, .975) = 2.776. *)
  let se = sqrt (0.00025 /. 5.0) in
  check_float_tol 1e-6 "half width" (2.776 *. se) iv.Batch_means.half_width;
  Alcotest.(check int) "batches" 5 iv.Batch_means.batches;
  check_float_tol 1e-9 "bounds" iv.Batch_means.mean
    ((iv.Batch_means.lower +. iv.Batch_means.upper) /. 2.0)

let test_batch_means_few_batches () =
  let b = Batch_means.create ~batch_length:10.0 in
  Batch_means.add_batch b 0.5;
  let iv = Batch_means.interval b in
  check_float "single batch mean" 0.5 iv.Batch_means.mean;
  Alcotest.(check bool) "half width nan" true (Float.is_nan iv.Batch_means.half_width)

let test_batch_means_autocorrelation () =
  let b = Batch_means.create ~batch_length:1.0 in
  (* Alternating series: strong negative lag-1 correlation. *)
  List.iter (Batch_means.add_batch b) [ 1.0; 0.0; 1.0; 0.0; 1.0; 0.0; 1.0; 0.0 ];
  Alcotest.(check bool) "negative lag-1" true (Batch_means.lag1_autocorrelation b < -0.5);
  let c = Batch_means.create ~batch_length:1.0 in
  (* Constant series: autocorrelation 0 by convention (zero variance). *)
  List.iter (Batch_means.add_batch c) [ 0.3; 0.3; 0.3; 0.3 ];
  check_float "constant series" 0.0 (Batch_means.lag1_autocorrelation c)

let test_batch_means_validation () =
  Alcotest.check_raises "bad length"
    (Invalid_argument "Batch_means.create: batch_length must be positive") (fun () ->
      ignore (Batch_means.create ~batch_length:0.0))

let test_histogram () =
  let h = Histogram.create ~lo:0.0 ~hi:10.0 ~bins:10 in
  List.iter (Histogram.add h) [ 0.5; 1.5; 1.7; 9.9; -1.0; 10.0; 25.0 ];
  Alcotest.(check int) "total" 7 (Histogram.total h);
  Alcotest.(check int) "underflow" 1 (Histogram.underflow h);
  Alcotest.(check int) "overflow" 2 (Histogram.overflow h);
  Alcotest.(check int) "bin 0" 1 (Histogram.bin h 0);
  Alcotest.(check int) "bin 1" 2 (Histogram.bin h 1);
  Alcotest.(check int) "bin 9" 1 (Histogram.bin h 9);
  let lo, hi = Histogram.bin_range h 3 in
  check_float "bin 3 lo" 3.0 lo;
  check_float "bin 3 hi" 4.0 hi

let test_histogram_quantile () =
  let h = Histogram.create ~lo:0.0 ~hi:100.0 ~bins:100 in
  for i = 1 to 1000 do
    Histogram.add h (float_of_int (i mod 100))
  done;
  let median = Histogram.quantile h 0.5 in
  Alcotest.(check bool) "median near 50" true (Float.abs (median -. 50.0) < 2.0);
  Alcotest.(check bool) "empty quantile nan" true
    (Float.is_nan (Histogram.quantile (Histogram.create ~lo:0.0 ~hi:1.0 ~bins:2) 0.5))

let test_histogram_validation () =
  Alcotest.check_raises "bins" (Invalid_argument "Histogram.create: bins must be positive")
    (fun () -> ignore (Histogram.create ~lo:0.0 ~hi:1.0 ~bins:0));
  Alcotest.check_raises "range" (Invalid_argument "Histogram.create: hi must exceed lo")
    (fun () -> ignore (Histogram.create ~lo:1.0 ~hi:1.0 ~bins:4))

let prop_welford_matches_two_pass =
  qcheck_case ~count:200 ~name:"welford matches two-pass computation"
    QCheck.(list_of_size (Gen.int_range 2 50) (float_range (-1000.0) 1000.0))
    (fun xs ->
      let w = Welford.create () in
      List.iter (Welford.add w) xs;
      let n = float_of_int (List.length xs) in
      let mean = List.fold_left ( +. ) 0.0 xs /. n in
      let var =
        List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 xs /. (n -. 1.0)
      in
      within ~tolerance:(1e-6 *. (1.0 +. Float.abs mean)) mean (Welford.mean w)
      && within ~tolerance:(1e-6 *. (1.0 +. var)) var (Welford.variance w))

let suite =
  [
    Alcotest.test_case "welford vs direct" `Quick test_welford_against_direct;
    Alcotest.test_case "welford empty/single" `Quick test_welford_empty_and_single;
    Alcotest.test_case "welford merge" `Quick test_welford_merge;
    Alcotest.test_case "welford stability" `Quick test_welford_numerical_stability;
    Alcotest.test_case "student-t values" `Quick test_student_t_values;
    Alcotest.test_case "student-t monotone" `Quick test_student_t_monotone;
    Alcotest.test_case "batch-means interval" `Quick test_batch_means_interval;
    Alcotest.test_case "batch-means few batches" `Quick test_batch_means_few_batches;
    Alcotest.test_case "batch-means autocorrelation" `Quick test_batch_means_autocorrelation;
    Alcotest.test_case "batch-means validation" `Quick test_batch_means_validation;
    Alcotest.test_case "histogram counting" `Quick test_histogram;
    Alcotest.test_case "histogram quantile" `Quick test_histogram_quantile;
    Alcotest.test_case "histogram validation" `Quick test_histogram_validation;
    prop_welford_matches_two_pass;
  ]
