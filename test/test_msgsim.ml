(* Message-level protocol engine: transport semantics, wire-protocol
   equivalence with the pure operation semantics, traffic accounting. *)

open Helpers
module Message = Dynvote_msgsim.Message
module Transport = Dynvote_msgsim.Transport
module Node = Dynvote_msgsim.Node
module Cluster = Dynvote_msgsim.Cluster

(* --- Transport --- *)

let test_transport_delivery () =
  let transport = Transport.create () in
  let received = ref [] in
  Transport.register transport 1 (fun _ msg -> received := msg :: !received);
  Transport.send transport ~src:0 ~dst:1 (Message.State_request { round = 0 });
  Transport.send transport ~src:0 ~dst:1 Message.Ack;
  Transport.run_until_quiet transport;
  Alcotest.(check int) "both delivered" 2 (List.length !received);
  Alcotest.(check int) "sent" 2 (Transport.messages_sent transport);
  Alcotest.(check int) "delivered" 2 (Transport.messages_delivered transport);
  (* FIFO: the first sent arrives first. *)
  (match List.rev !received with
  | [ first; second ] ->
      Alcotest.(check bool) "order" true
        (match (first.Message.payload, second.Message.payload) with
        | Message.State_request _, Message.Ack -> true
        | _ -> false)
  | _ -> Alcotest.fail "wrong count")

let test_transport_drop_disconnected () =
  let transport = Transport.create ~connected:(fun a b -> a = b) () in
  let received = ref 0 in
  Transport.register transport 1 (fun _ _ -> incr received);
  Transport.send transport ~src:0 ~dst:1 Message.Ack;
  Transport.run_until_quiet transport;
  Alcotest.(check int) "nothing delivered" 0 !received;
  Alcotest.(check int) "counted as dropped" 1 (Transport.messages_dropped transport);
  (* The drop is attributed to the partition, not to an injected fault. *)
  Alcotest.(check int) "partition drop" 1 (Transport.messages_dropped_partition transport);
  Alcotest.(check int) "no fault drop" 0 (Transport.messages_dropped_fault transport)

let test_transport_replies_chain () =
  (* A handler that replies; run_until_quiet must deliver the reply too. *)
  let transport = Transport.create () in
  let got_reply = ref false in
  Transport.register transport 1 (fun tr msg ->
      match msg.Message.payload with
      | Message.State_request _ -> Transport.send tr ~src:1 ~dst:0 Message.Ack
      | _ -> ());
  Transport.register transport 0 (fun _ msg ->
      if msg.Message.payload = Message.Ack then got_reply := true);
  Transport.send transport ~src:0 ~dst:1 (Message.State_request { round = 0 });
  Transport.run_until_quiet transport;
  Alcotest.(check bool) "round trip" true !got_reply

let test_transport_kind_accounting () =
  let transport = Transport.create () in
  Transport.register transport 1 (fun _ _ -> ());
  Transport.send transport ~src:0 ~dst:1 (Message.State_request { round = 0 });
  Transport.send transport ~src:0 ~dst:1 (Message.State_request { round = 1 });
  Transport.send transport ~src:0 ~dst:1 (Message.Data_request { round = 0 });
  Transport.run_until_quiet transport;
  Alcotest.(check int) "state requests" 2 (Transport.kind_count transport "state_request");
  Alcotest.(check int) "data requests" 1 (Transport.kind_count transport "data_request");
  Alcotest.(check bool) "bytes counted" true (Transport.bytes_sent transport > 0);
  Transport.reset_stats transport;
  Alcotest.(check int) "reset" 0 (Transport.messages_sent transport)

(* --- Cluster operations --- *)

let universe3 = ss [ 0; 1; 2 ]

let test_cluster_write_then_read () =
  let c = Cluster.create ~universe:universe3 ~initial_content:"v0" () in
  let w = Cluster.write c ~at:0 ~content:"hello" in
  Alcotest.(check bool) "write granted" true w.Cluster.granted;
  let r = Cluster.read c ~at:2 in
  Alcotest.(check bool) "read granted" true r.Cluster.granted;
  Alcotest.(check (option string)) "read returns the write" (Some "hello")
    r.Cluster.content;
  Alcotest.(check bool) "consistent" true (Cluster.is_consistent c)

let test_cluster_minority_denied () =
  let c = Cluster.create ~universe:universe3 () in
  Cluster.fail c 0;
  Cluster.fail c 1;
  let r = Cluster.read c ~at:2 in
  Alcotest.(check bool) "1 of 3 denied" false r.Cluster.granted

let test_cluster_partition_semantics () =
  let c = Cluster.create ~universe:universe3 () in
  Cluster.partition c [ ss [ 0; 1 ]; ss [ 2 ] ];
  Alcotest.(check bool) "majority side writes" true
    (Cluster.write c ~at:0 ~content:"x").Cluster.granted;
  Alcotest.(check bool) "minority side denied" false (Cluster.read c ~at:2).Cluster.granted;
  (* After healing, the minority copy catches up via the next operation. *)
  Cluster.heal c;
  let r = Cluster.read c ~at:2 in
  Alcotest.(check bool) "healed read granted" true r.Cluster.granted;
  Alcotest.(check (option string)) "reads the committed value" (Some "x") r.Cluster.content

let test_cluster_recovery_transfers_data () =
  let c = Cluster.create ~universe:universe3 ~initial_content:"v1" () in
  Cluster.fail c 2;
  ignore (Cluster.write c ~at:0 ~content:"v2");
  (* Site 2 recovers: Figure 3 — it must copy the file from the quorum. *)
  let before = Transport.kind_count (Cluster.transport c) "data" in
  let r = Cluster.recover c ~site:2 in
  Alcotest.(check bool) "recovery granted" true r.Cluster.granted;
  Alcotest.(check string) "data transferred" "v2" (Node.content (Cluster.node c 2));
  Alcotest.(check bool) "a data message flowed" true
    (Transport.kind_count (Cluster.transport c) "data" > before);
  Alcotest.(check bool) "states merged" true
    (Replica.equal (Node.replica (Cluster.node c 2)) (Node.replica (Cluster.node c 0)))

let test_cluster_requires_up_member () =
  let c = Cluster.create ~universe:universe3 () in
  Alcotest.check_raises "not a member" (Invalid_argument "Cluster: requester does not hold a copy")
    (fun () -> ignore (Cluster.read c ~at:5));
  Cluster.fail c 1;
  Alcotest.check_raises "down" (Invalid_argument "Cluster: requester is down") (fun () ->
      ignore (Cluster.read c ~at:1))

(* Wire protocol produces exactly the state evolution of the pure
   semantics, operation by operation, over a scripted history. *)
let test_wire_equals_pure () =
  let c = Cluster.create ~universe:universe3 () in
  let pure = Array.make 3 (Replica.initial universe3) in
  let ctx = Operation.make_ctx (Ordering.default 3) in
  let compare_states step =
    Site_set.iter
      (fun site ->
        Alcotest.check replica_testable
          (Printf.sprintf "%s: site %d" step site)
          pure.(site)
          (Node.replica (Cluster.node c site)))
      universe3
  in
  (* write at 0 *)
  ignore (Cluster.write c ~at:0 ~content:"a");
  ignore (Operation.write ctx pure ~reachable:universe3 ());
  compare_states "write";
  (* 2 fails; two writes *)
  Cluster.fail c 2;
  ignore (Cluster.write c ~at:1 ~content:"b");
  ignore (Operation.write ctx pure ~reachable:(ss [ 0; 1 ]) ());
  ignore (Cluster.read c ~at:0);
  ignore (Operation.read ctx pure ~reachable:(ss [ 0; 1 ]) ());
  (* 2 recovers *)
  ignore (Cluster.recover c ~site:2);
  ignore (Operation.recover ctx pure ~site:2 ~reachable:universe3 ());
  compare_states "after recovery";
  (* 0 fails, 1 continues, tie-break on {1}? no: {1,2} is 2 of 3. *)
  Cluster.fail c 0;
  ignore (Cluster.write c ~at:1 ~content:"c");
  ignore (Operation.write ctx pure ~reachable:(ss [ 1; 2 ]) ());
  compare_states "final"

(* Message counts: the paper's overhead claim.  An ODV operation costs the
   same message pattern as an MCV operation (probe n-1, replies, commits);
   the non-optimistic policies additionally pay the connection-vector
   exchange at every topology event. *)
let test_message_overhead_accounting () =
  let c = Cluster.create ~universe:universe3 () in
  let w = Cluster.write c ~at:0 ~content:"x" in
  (* START: 2 requests + 2 replies; write data: 2; commit: 2 = 8 total. *)
  Alcotest.(check int) "write messages" 8 w.Cluster.messages;
  let r = Cluster.read c ~at:0 in
  (* START: 2 + 2; commit: 2 = 6 (requester's copy is current, no data). *)
  Alcotest.(check int) "read messages" 6 r.Cluster.messages;
  (* Connection-vector bill for one event with components {0,1} and {2}:
     2*1 + 0 = 2 messages. *)
  Alcotest.(check int) "connection vector cost" 2
    (Cluster.connection_vector_messages [ ss [ 0; 1 ]; ss [ 2 ] ])

let test_larger_cluster_counts () =
  let universe = ss [ 0; 1; 2; 3; 4 ] in
  let c = Cluster.create ~universe () in
  let w = Cluster.write c ~at:0 ~content:"y" in
  (* probe 4 + replies 4 + data 4 + commit 4 = 16. *)
  Alcotest.(check int) "5-site write messages" 16 w.Cluster.messages;
  Alcotest.(check bool) "granted" true w.Cluster.granted

(* Fault injection: stale commits are ignored; a dropped commit leaves a
   copy op-stale and the next operation repairs it through the normal
   recovery path. *)
let test_stale_commit_ignored () =
  let node = Node.create ~site:0 ~universe:universe3 ~initial_content:"" in
  Node.install_commit node ~op_no:5 ~version:3 ~partition:(ss [ 0; 1 ]) ();
  let snapshot = Node.replica node in
  (* A delayed duplicate and an outright stale commit change nothing. *)
  Node.install_commit node ~op_no:5 ~version:3 ~partition:(ss [ 0; 1 ]) ();
  Node.install_commit node ~op_no:2 ~version:9 ~partition:universe3 ();
  Alcotest.check replica_testable "unchanged" snapshot (Node.replica node);
  Node.install_commit node ~op_no:6 ~version:4 ~partition:(ss [ 0 ]) ();
  Alcotest.(check int) "newer applies" 6 (Replica.op_no (Node.replica node))

let test_lost_commit_self_heals () =
  let c = Cluster.create ~universe:universe3 ~initial_content:"v0" () in
  (* Drop every commit addressed to site 2 during one write. *)
  Transport.set_fault (Cluster.transport c) (fun msg ->
      msg.Message.dst = 2
      && match msg.Message.payload with Message.Commit _ -> true | _ -> false);
  let w = Cluster.write c ~at:0 ~content:"v1" in
  Alcotest.(check bool) "write still granted" true w.Cluster.granted;
  (* Exactly the injected drop, attributed to the fault counter. *)
  Alcotest.(check int) "fault drop counted" 1
    (Transport.messages_dropped_fault (Cluster.transport c));
  Alcotest.(check int) "no partition drop" 0
    (Transport.messages_dropped_partition (Cluster.transport c));
  Transport.clear_fault (Cluster.transport c);
  (* Site 2 missed the commit: it is op-stale but received the data. *)
  Alcotest.(check bool) "site 2 behind" true
    (Replica.op_no (Node.replica (Cluster.node c 2))
    < Replica.op_no (Node.replica (Cluster.node c 0)));
  (* Reads still work — the quorum never depended on site 2's vote — and
     return the committed value even when coordinated at the stale site. *)
  let r = Cluster.read c ~at:2 in
  Alcotest.(check bool) "read granted" true r.Cluster.granted;
  Alcotest.(check (option string)) "reads the committed value" (Some "v1") r.Cluster.content;
  (* Running the recovery protocol reintegrates the stale copy fully. *)
  let rec_outcome = Cluster.recover c ~site:2 in
  Alcotest.(check bool) "recovery granted" true rec_outcome.Cluster.granted;
  Alcotest.(check bool) "consistent after healing" true (Cluster.is_consistent c);
  Alcotest.check replica_testable "states re-merged"
    (Node.replica (Cluster.node c 0))
    (Node.replica (Cluster.node c 2))

(* Operation locks: conflicting coordinators are serialized; locks are
   all-or-nothing, released on conflict and lost on crash. *)
let test_lock_serializes_coordinators () =
  let c = Cluster.create ~universe:universe3 () in
  (* Coordinator at site 0 locks operation 1 everywhere. *)
  (match Cluster.lock c ~at:0 ~op:1 with
  | `Granted locked -> Alcotest.check set_testable "locked all three" universe3 locked
  | `Denied -> Alcotest.fail "first lock should succeed");
  (* A rival coordinator cannot proceed while op 1 holds the locks. *)
  (match Cluster.lock c ~at:2 ~op:2 with
  | `Denied -> ()
  | `Granted _ -> Alcotest.fail "rival lock must be denied");
  (* The rival's failed attempt must not have disturbed op 1's locks. *)
  Site_set.iter
    (fun site ->
      Alcotest.(check (option int))
        (Printf.sprintf "site %d still held by op 1" site)
        (Some 1)
        (Node.locked_by (Cluster.node c site)))
    universe3;
  (* Re-locking is idempotent for the holder. *)
  (match Cluster.lock c ~at:0 ~op:1 with
  | `Granted _ -> ()
  | `Denied -> Alcotest.fail "holder must be able to re-lock");
  (* Release; the rival now succeeds. *)
  Cluster.unlock c ~at:0 ~op:1;
  match Cluster.lock c ~at:2 ~op:2 with
  | `Granted _ -> ()
  | `Denied -> Alcotest.fail "lock should be free again"

let test_lock_lost_on_crash () =
  let c = Cluster.create ~universe:universe3 () in
  (match Cluster.lock c ~at:0 ~op:7 with `Granted _ -> () | `Denied -> Alcotest.fail "lock");
  (* The coordinator crashes: its own lock state vanishes; the other sites
     still hold op 7... *)
  Cluster.fail c 0;
  Alcotest.(check (option int)) "crashed site lock cleared" None
    (Node.locked_by (Cluster.node c 0));
  Alcotest.(check (option int)) "survivor still locked" (Some 7)
    (Node.locked_by (Cluster.node c 1));
  (* ...so a new coordinator is refused until it clears the orphan locks
     (a release on behalf of the dead operation). *)
  (match Cluster.lock c ~at:1 ~op:8 with
  | `Denied -> ()
  | `Granted _ -> Alcotest.fail "orphan locks must block");
  Cluster.unlock c ~at:1 ~op:7;
  match Cluster.lock c ~at:1 ~op:8 with
  | `Granted _ -> ()
  | `Denied -> Alcotest.fail "after cleanup the lock must be free"

(* Randomized equivalence: arbitrary fail/recover/write/read sequences keep
   the wire-level states consistent and identical to the pure oracle. *)
let prop_random_histories_consistent =
  qcheck_case ~count:60 ~name:"random wire histories stay consistent"
    Generators.cluster_script
    (fun script ->
      let c = Cluster.create ~universe:universe3 ~initial_content:"0" () in
      let counter = ref 0 in
      List.iter
        (fun cmd ->
          let site = cmd mod 3 in
          match cmd / 3 mod 4 with
          | 0 -> Cluster.fail c site
          | 1 -> if not (Site_set.mem site (Cluster.up_sites c)) then
                   ignore (Cluster.recover c ~site)
          | 2 ->
              if Site_set.mem site (Cluster.up_sites c) then begin
                incr counter;
                ignore (Cluster.write c ~at:site ~content:(string_of_int !counter))
              end
          | _ ->
              if Site_set.mem site (Cluster.up_sites c) then
                ignore (Cluster.read c ~at:site))
        script;
      Cluster.is_consistent c)

let suite =
  [
    Alcotest.test_case "transport delivery" `Quick test_transport_delivery;
    Alcotest.test_case "transport drops when disconnected" `Quick
      test_transport_drop_disconnected;
    Alcotest.test_case "transport reply chains" `Quick test_transport_replies_chain;
    Alcotest.test_case "transport kind accounting" `Quick test_transport_kind_accounting;
    Alcotest.test_case "write then read" `Quick test_cluster_write_then_read;
    Alcotest.test_case "minority denied" `Quick test_cluster_minority_denied;
    Alcotest.test_case "partition semantics" `Quick test_cluster_partition_semantics;
    Alcotest.test_case "recovery transfers data" `Quick test_cluster_recovery_transfers_data;
    Alcotest.test_case "requester validation" `Quick test_cluster_requires_up_member;
    Alcotest.test_case "wire protocol = pure semantics" `Quick test_wire_equals_pure;
    Alcotest.test_case "stale commits ignored" `Quick test_stale_commit_ignored;
    Alcotest.test_case "lost commit self-heals" `Quick test_lost_commit_self_heals;
    Alcotest.test_case "locks serialize coordinators" `Quick test_lock_serializes_coordinators;
    Alcotest.test_case "locks lost on crash" `Quick test_lock_lost_on_crash;
    Alcotest.test_case "message overhead accounting" `Quick test_message_overhead_accounting;
    Alcotest.test_case "larger cluster counts" `Quick test_larger_cluster_counts;
    prop_random_histories_consistent;
  ]
