(* Operation: the COMMIT effects of READ / WRITE / RECOVER / refresh. *)

open Helpers

let ordering = Ordering.default 8

let ctx ?(flavor = Decision.ldv_flavor) ?(segment_of = fun _ -> 0) () =
  { Operation.flavor; ordering; segment_of }

let fresh universe = Array.make 8 (Replica.initial (ss universe))

let test_write_updates_all () =
  let states = fresh [ 0; 1; 2 ] in
  (match Operation.write (ctx ()) states ~reachable:(ss [ 0; 1; 2 ]) () with
  | Decision.Granted _ -> ()
  | v -> Alcotest.failf "write denied: %a" Decision.pp_verdict v);
  List.iter
    (fun site ->
      Alcotest.check replica_testable
        (Printf.sprintf "site %d after write" site)
        (Replica.make ~op_no:2 ~version:2 ~partition:(ss [ 0; 1; 2 ]))
        states.(site))
    [ 0; 1; 2 ]

let test_read_increments_op_only () =
  let states = fresh [ 0; 1; 2 ] in
  ignore (Operation.read (ctx ()) states ~reachable:(ss [ 0; 1; 2 ]) ());
  Alcotest.check replica_testable "read bumps o, not v"
    (Replica.make ~op_no:2 ~version:1 ~partition:(ss [ 0; 1; 2 ]))
    states.(0)

let test_denied_leaves_state () =
  let states = fresh [ 0; 1; 2 ] in
  let before = Array.copy states in
  (match Operation.write (ctx ()) states ~reachable:(ss [ 2 ]) () with
  | Decision.Denied _ -> ()
  | v -> Alcotest.failf "expected denial, got %a" Decision.pp_verdict v);
  Array.iteri
    (fun i expected -> Alcotest.check replica_testable "unchanged" expected states.(i))
    before

(* Quorum shrinks with operations performed while a site is down: the
   paper's §2 sequence. *)
let test_quorum_shrinks () =
  let states = fresh [ 0; 1; 2 ] in
  (* Seven successful writes with everyone up: o = v = 8. *)
  for _ = 1 to 7 do
    ignore (Operation.write (ctx ()) states ~reachable:(ss [ 0; 1; 2 ]) ())
  done;
  Alcotest.check replica_testable "after 7 writes"
    (Replica.make ~op_no:8 ~version:8 ~partition:(ss [ 0; 1; 2 ]))
    states.(1);
  (* B (site 1) fails; three more writes shrink the quorum to {A, C}. *)
  for _ = 1 to 3 do
    ignore (Operation.write (ctx ()) states ~reachable:(ss [ 0; 2 ]) ())
  done;
  Alcotest.check replica_testable "A after 3 more writes"
    (Replica.make ~op_no:11 ~version:11 ~partition:(ss [ 0; 2 ]))
    states.(0);
  (* B still has its pre-failure state: information moves at access time. *)
  Alcotest.check replica_testable "B unchanged while down"
    (Replica.make ~op_no:8 ~version:8 ~partition:(ss [ 0; 1; 2 ]))
    states.(1)

let test_recover_reinserts () =
  let states = fresh [ 0; 1; 2 ] in
  ignore (Operation.write (ctx ()) states ~reachable:(ss [ 0; 2 ]) ());
  (* Site 1 was down during the write; now it can reach the quorum. *)
  (match Operation.recover (ctx ()) states ~site:1 ~reachable:(ss [ 0; 1; 2 ]) () with
  | Decision.Granted _ -> ()
  | v -> Alcotest.failf "recover denied: %a" Decision.pp_verdict v);
  Alcotest.check replica_testable "recovered copy is current"
    (Replica.make ~op_no:3 ~version:2 ~partition:(ss [ 0; 1; 2 ]))
    states.(1);
  Alcotest.check replica_testable "quorum members updated too"
    (Replica.make ~op_no:3 ~version:2 ~partition:(ss [ 0; 1; 2 ]))
    states.(0)

let test_recover_requires_membership () =
  let states = fresh [ 0; 1; 2 ] in
  Alcotest.check_raises "recovering site must be reachable"
    (Invalid_argument "Operation.recover: recovering site not in reachable set") (fun () ->
      ignore (Operation.recover (ctx ()) states ~site:1 ~reachable:(ss [ 0; 2 ]) ()))

let test_recover_denied_in_minority () =
  let states = fresh [ 0; 1; 2 ] in
  (* Writes in {0, 2} advance past site 1. *)
  ignore (Operation.write (ctx ()) states ~reachable:(ss [ 0; 2 ]) ());
  (* Site 1 restarts but can only reach itself: denied. *)
  match Operation.recover (ctx ()) states ~site:1 ~reachable:(ss [ 1 ]) () with
  | Decision.Denied _ -> ()
  | v -> Alcotest.failf "expected denial, got %a" Decision.pp_verdict v

let test_refresh_merges_component () =
  let states = fresh [ 0; 1; 2; 3 ] in
  (* Writes while 2 and 3 are away. *)
  ignore (Operation.write (ctx ()) states ~reachable:(ss [ 0; 1 ]) ());
  ignore (Operation.write (ctx ()) states ~reachable:(ss [ 0; 1 ]) ());
  (* Everyone reconnects; a single refresh reunifies the file. *)
  (match Operation.refresh (ctx ()) states ~reachable:(ss [ 0; 1; 2; 3 ]) () with
  | Decision.Granted _ -> ()
  | v -> Alcotest.failf "refresh denied: %a" Decision.pp_verdict v);
  let expected_partition = ss [ 0; 1; 2; 3 ] in
  List.iter
    (fun site ->
      let r = states.(site) in
      Alcotest.(check bool)
        (Printf.sprintf "site %d current" site)
        true
        (Replica.version r = 3 && Site_set.equal (Replica.partition r) expected_partition))
    [ 0; 1; 2; 3 ]

let test_refresh_denied_stale_group () =
  let states = fresh [ 0; 1; 2 ] in
  ignore (Operation.write (ctx ()) states ~reachable:(ss [ 0; 1 ]) ());
  match Operation.refresh (ctx ()) states ~reachable:(ss [ 2 ]) () with
  | Decision.Denied _ -> ()
  | v -> Alcotest.failf "expected denial, got %a" Decision.pp_verdict v

(* Invariant: after any history of refreshes, for every component the
   up-to-date reachable members equal Q — i.e. P_m ∩ R = Q (used by the
   analytic model). *)
let prop_pm_inter_r_is_q =
  qcheck_case ~count:300 ~name:"P_m ∩ R = Q after any history"
    QCheck.(pair small_int (list_of_size (Gen.int_range 1 25) (int_bound 30)))
    (fun (_, masks) ->
      let universe = ss [ 0; 1; 2; 3; 4 ] in
      let states = Array.make 8 (Replica.initial universe) in
      let c = ctx () in
      List.iter
        (fun mask ->
          let live = Site_set.inter (Site_set.of_int_unsafe mask) universe in
          if not (Site_set.is_empty live) then
            ignore (Operation.refresh c states ~reachable:live ()))
        masks;
      (* Check the invariant on every subset that could be a component. *)
      List.for_all
        (fun mask ->
          let r = Site_set.inter (Site_set.of_int_unsafe mask) universe in
          Site_set.is_empty r
          ||
          match Operation.evaluate c states ~reachable:r () with
          | Decision.Granted g ->
              Site_set.equal (Site_set.inter g.Decision.p_m r) g.Decision.q
          | Decision.Denied _ -> true)
        (List.init 31 (fun i -> i + 1)))

(* Version numbers never decrease at any site. *)
let prop_versions_monotonic =
  qcheck_case ~count:300 ~name:"versions monotonic under refresh histories"
    QCheck.(list_of_size (Gen.int_range 1 30) (int_bound 30))
    (fun masks ->
      let universe = ss [ 0; 1; 2; 3; 4 ] in
      let states = Array.make 8 (Replica.initial universe) in
      let c = ctx () in
      let ok = ref true in
      List.iter
        (fun mask ->
          let before = Array.map Replica.version states in
          let live = Site_set.inter (Site_set.of_int_unsafe mask) universe in
          if not (Site_set.is_empty live) then begin
            (* Alternate writes and refreshes. *)
            ignore (Operation.write c states ~reachable:live ());
            ignore (Operation.refresh c states ~reachable:live ())
          end;
          Array.iteri (fun i v -> if Replica.version states.(i) < v then ok := false) before)
        masks;
      !ok)

let suite =
  [
    Alcotest.test_case "write updates o, v, P" `Quick test_write_updates_all;
    Alcotest.test_case "read increments o only" `Quick test_read_increments_op_only;
    Alcotest.test_case "denied op leaves state intact" `Quick test_denied_leaves_state;
    Alcotest.test_case "quorum shrinks (paper §2)" `Quick test_quorum_shrinks;
    Alcotest.test_case "recover reinserts a copy" `Quick test_recover_reinserts;
    Alcotest.test_case "recover requires membership" `Quick test_recover_requires_membership;
    Alcotest.test_case "recover denied in minority" `Quick test_recover_denied_in_minority;
    Alcotest.test_case "refresh merges a component" `Quick test_refresh_merges_component;
    Alcotest.test_case "refresh denied for stale group" `Quick test_refresh_denied_stale_group;
    prop_pm_inter_r_is_q;
    prop_versions_monotonic;
  ]
