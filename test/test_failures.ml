(* Failure model: Table 1 specs and the up/down transition stream. *)

open Helpers
module Site_spec = Dynvote_failures.Site_spec
module Event_gen = Dynvote_failures.Event_gen

let test_table1_values () =
  let specs = Site_spec.ucsd_sites in
  Alcotest.(check int) "eight sites" 8 (Array.length specs);
  Alcotest.(check string) "site 1" "csvax" (Site_spec.name specs.(0));
  Alcotest.(check string) "site 8" "mangle" (Site_spec.name specs.(7));
  check_float "beowulf mttf" 10.0 (Site_spec.mttf_days specs.(1));
  check_float "wizard hw fraction" 0.5 (Site_spec.hardware_fraction specs.(3));
  check_float_tol 1e-12 "csvax restart 20 min" (20.0 /. 1440.0) (Site_spec.restart_days specs.(0));
  check_float "wizard repair constant 7 days" 7.0 (Site_spec.repair_constant_days specs.(3));
  Alcotest.(check bool) "grendel maintained" true (Site_spec.maintenance specs.(2) <> None);
  Alcotest.(check bool) "beowulf not maintained" true (Site_spec.maintenance specs.(1) = None)

let test_mean_repair () =
  (* Wizard: 50% hw (168 + 168 h = 14 d), 50% sw (15 min). *)
  let w = Site_spec.ucsd_sites.(3) in
  check_float_tol 1e-9 "wizard mean repair"
    ((0.5 *. 14.0) +. (0.5 *. (15.0 /. 1440.0)))
    (Site_spec.mean_repair_days w);
  let a = Site_spec.availability_no_maintenance w in
  check_float_tol 1e-9 "wizard availability" (50.0 /. (50.0 +. Site_spec.mean_repair_days w)) a

let test_availability_with_maintenance () =
  let c = Site_spec.ucsd_sites.(0) in
  let base = Site_spec.availability_no_maintenance c in
  let with_m = Site_spec.availability c in
  check_float_tol 1e-9 "maintenance discount" (base *. (1.0 -. (3.0 /. 24.0 /. 90.0))) with_m;
  Alcotest.(check bool) "maintenance reduces availability" true (with_m < base)

let test_spec_validation () =
  Alcotest.check_raises "bad mttf" (Invalid_argument "Site_spec: mttf must be positive")
    (fun () ->
      ignore
        (Site_spec.create ~name:"x" ~mttf_days:0.0 ~hardware_fraction:0.5
           ~restart_minutes:1.0 ~repair_constant_hours:0.0 ~repair_exp_hours:1.0 ()));
  Alcotest.check_raises "bad fraction"
    (Invalid_argument "Site_spec: hardware fraction outside [0,1]") (fun () ->
      ignore
        (Site_spec.create ~name:"x" ~mttf_days:1.0 ~hardware_fraction:1.5
           ~restart_minutes:1.0 ~repair_constant_hours:0.0 ~repair_exp_hours:1.0 ()))

let test_transitions_alternate () =
  (* Per site, transitions must strictly alternate down/up. *)
  let gen = Event_gen.create ~seed:1 Site_spec.ucsd_sites in
  let state = Array.make 8 true in
  for _ = 1 to 20_000 do
    let tr = Event_gen.next gen in
    if state.(tr.Event_gen.site) = tr.Event_gen.now_up then
      Alcotest.failf "site %d: repeated %s at %f" tr.Event_gen.site
        (if tr.Event_gen.now_up then "up" else "down")
        tr.Event_gen.time;
    state.(tr.Event_gen.site) <- tr.Event_gen.now_up
  done

let test_times_non_decreasing () =
  let gen = Event_gen.create ~seed:2 Site_spec.ucsd_sites in
  let last = ref 0.0 in
  for _ = 1 to 20_000 do
    let tr = Event_gen.next gen in
    if tr.Event_gen.time < !last then Alcotest.fail "time went backwards";
    last := tr.Event_gen.time
  done

let test_determinism () =
  let run seed =
    let gen = Event_gen.create ~seed Site_spec.ucsd_sites in
    List.init 500 (fun _ ->
        let tr = Event_gen.next gen in
        (tr.Event_gen.time, tr.Event_gen.site, tr.Event_gen.now_up))
  in
  Alcotest.(check bool) "same seed, same stream" true (run 7 = run 7);
  Alcotest.(check bool) "different seed, different stream" true (run 7 <> run 8)

let test_up_set_tracking () =
  let gen = Event_gen.create ~seed:3 Site_spec.ucsd_sites in
  Alcotest.(check bool) "initially all up" true (Event_gen.all_up gen);
  Alcotest.check set_testable "initial up set" (Site_set.universe 8) (Event_gen.up_set gen);
  let tr = Event_gen.next gen in
  Alcotest.(check bool) "first transition is a failure" false tr.Event_gen.now_up;
  Alcotest.(check bool) "up set reflects it" false
    (Site_set.mem tr.Event_gen.site (Event_gen.up_set gen))

(* Empirical availability must match the alternating-renewal formula. *)
let test_empirical_availability () =
  let specs = Site_spec.uniform ~n:1 ~mttf_days:10.0 ~repair_hours:24.0 in
  let gen = Event_gen.create ~seed:4 specs in
  let horizon = 500_000.0 in
  let up_time = ref 0.0 and last = ref 0.0 and was_up = ref true in
  let rec go () =
    let tr = Event_gen.next gen in
    if tr.Event_gen.time < horizon then begin
      if !was_up then up_time := !up_time +. (tr.Event_gen.time -. !last);
      last := tr.Event_gen.time;
      was_up := tr.Event_gen.now_up;
      go ()
    end
  in
  go ();
  if !was_up then up_time := !up_time +. (horizon -. !last);
  let expected = 10.0 /. 11.0 in
  Alcotest.(check bool) "within 1% of MTTF/(MTTF+MTTR)" true
    (close_rel ~rel:0.01 expected (!up_time /. horizon))

(* Hardware/software mix: mean outage of a 50/50 site must approach the
   weighted mean. *)
let test_outage_mix () =
  let spec =
    Site_spec.create ~name:"mix" ~mttf_days:5.0 ~hardware_fraction:0.5
      ~restart_minutes:0.0 ~repair_constant_hours:24.0 ~repair_exp_hours:0.0 ()
  in
  (* Outages are exactly 0 (software) or exactly 1 day (hardware const). *)
  let gen = Event_gen.create ~seed:5 [| spec |] in
  let outages = ref 0 and hw = ref 0 in
  let down_at = ref nan in
  for _ = 1 to 20_000 do
    let tr = Event_gen.next gen in
    if not tr.Event_gen.now_up then down_at := tr.Event_gen.time
    else begin
      incr outages;
      if tr.Event_gen.time -. !down_at > 0.5 then incr hw
    end
  done;
  let fraction = float_of_int !hw /. float_of_int !outages in
  Alcotest.(check bool) "hardware fraction near 0.5" true
    (Float.abs (fraction -. 0.5) < 0.02)

let test_maintenance_is_staggered () =
  (* Sites 1, 3, 5 are maintained; their windows must never coincide. *)
  let gen = Event_gen.create ~seed:6 Site_spec.ucsd_sites in
  let in_maintenance = Array.make 8 false in
  let simultaneous = ref false in
  for _ = 1 to 50_000 do
    let tr = Event_gen.next gen in
    (match tr.Event_gen.cause with
    | Event_gen.Maintenance_begin -> in_maintenance.(tr.Event_gen.site) <- true
    | Event_gen.Maintenance_over -> in_maintenance.(tr.Event_gen.site) <- false
    | Event_gen.Hardware_failure | Event_gen.Software_failure | Event_gen.Repair_done -> ());
    let count = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 in_maintenance in
    if count > 1 then simultaneous := true
  done;
  Alcotest.(check bool) "never two sites in maintenance at once" false !simultaneous

let test_maintenance_frequency () =
  (* csvax should see roughly one maintenance outage per 90 days. *)
  let gen = Event_gen.create ~seed:7 Site_spec.ucsd_sites in
  let horizon = 90_000.0 in
  let count = ref 0 in
  let rec go () =
    let tr = Event_gen.next gen in
    if tr.Event_gen.time < horizon then begin
      if tr.Event_gen.site = 0 && tr.Event_gen.cause = Event_gen.Maintenance_begin then
        incr count;
      go ()
    end
  in
  go ();
  (* ~1000 scheduled slots; a few are skipped while down. *)
  Alcotest.(check bool) "close to one per period" true (!count > 900 && !count <= 1000)

let suite =
  [
    Alcotest.test_case "Table 1 values" `Quick test_table1_values;
    Alcotest.test_case "mean repair time" `Quick test_mean_repair;
    Alcotest.test_case "availability with maintenance" `Quick test_availability_with_maintenance;
    Alcotest.test_case "spec validation" `Quick test_spec_validation;
    Alcotest.test_case "transitions alternate" `Quick test_transitions_alternate;
    Alcotest.test_case "times non-decreasing" `Quick test_times_non_decreasing;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "up-set tracking" `Quick test_up_set_tracking;
    Alcotest.test_case "empirical availability" `Slow test_empirical_availability;
    Alcotest.test_case "hardware/software mix" `Quick test_outage_mix;
    Alcotest.test_case "maintenance staggered" `Quick test_maintenance_is_staggered;
    Alcotest.test_case "maintenance frequency" `Quick test_maintenance_frequency;
  ]
