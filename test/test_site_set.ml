(* Site_set: unit tests plus a property suite checking the bitset against
   OCaml's Set.Make as a reference implementation. *)

open Helpers

module Ref_set = Set.Make (Int)

let to_ref s = Ref_set.of_list (Site_set.to_list s)
let of_ref r = Site_set.of_list (Ref_set.elements r)

let test_empty () =
  Alcotest.(check bool) "empty is empty" true (Site_set.is_empty Site_set.empty);
  Alcotest.(check int) "cardinal 0" 0 (Site_set.cardinal Site_set.empty);
  Alcotest.(check (list int)) "no members" [] (Site_set.to_list Site_set.empty)

let test_singleton () =
  let s = Site_set.singleton 5 in
  Alcotest.(check bool) "mem 5" true (Site_set.mem 5 s);
  Alcotest.(check bool) "not mem 4" false (Site_set.mem 4 s);
  Alcotest.(check int) "cardinal 1" 1 (Site_set.cardinal s)

let test_universe () =
  let u = Site_set.universe 8 in
  Alcotest.(check int) "cardinal" 8 (Site_set.cardinal u);
  Alcotest.(check (list int)) "members" [ 0; 1; 2; 3; 4; 5; 6; 7 ] (Site_set.to_list u);
  Alcotest.(check bool) "universe 0 empty" true (Site_set.is_empty (Site_set.universe 0))

let test_add_remove () =
  let s = ss [ 1; 3; 5 ] in
  Alcotest.check set_testable "add" (ss [ 1; 2; 3; 5 ]) (Site_set.add 2 s);
  Alcotest.check set_testable "add existing" s (Site_set.add 3 s);
  Alcotest.check set_testable "remove" (ss [ 1; 5 ]) (Site_set.remove 3 s);
  Alcotest.check set_testable "remove absent" s (Site_set.remove 4 s)

let test_set_algebra () =
  let a = ss [ 0; 1; 2 ] and b = ss [ 2; 3 ] in
  Alcotest.check set_testable "union" (ss [ 0; 1; 2; 3 ]) (Site_set.union a b);
  Alcotest.check set_testable "inter" (ss [ 2 ]) (Site_set.inter a b);
  Alcotest.check set_testable "diff" (ss [ 0; 1 ]) (Site_set.diff a b);
  Alcotest.(check bool) "subset yes" true (Site_set.subset (ss [ 1; 2 ]) a);
  Alcotest.(check bool) "subset no" false (Site_set.subset b a);
  Alcotest.(check bool) "disjoint no" false (Site_set.disjoint a b);
  Alcotest.(check bool) "disjoint yes" true (Site_set.disjoint (ss [ 0 ]) (ss [ 1 ]))

let test_extrema () =
  let s = ss [ 3; 1; 7 ] in
  Alcotest.(check int) "min" 1 (Site_set.min_elt s);
  Alcotest.(check int) "max" 7 (Site_set.max_elt s);
  Alcotest.(check int) "choose deterministic" 1 (Site_set.choose s);
  Alcotest.check_raises "min of empty" Not_found (fun () ->
      ignore (Site_set.min_elt Site_set.empty));
  Alcotest.check_raises "max of empty" Not_found (fun () ->
      ignore (Site_set.max_elt Site_set.empty))

let test_iteration () =
  let s = ss [ 2; 4; 6 ] in
  Alcotest.(check int) "fold sum" 12 (Site_set.fold ( + ) s 0);
  Alcotest.(check bool) "for_all even" true (Site_set.for_all (fun i -> i mod 2 = 0) s);
  Alcotest.(check bool) "exists > 5" true (Site_set.exists (fun i -> i > 5) s);
  Alcotest.(check bool) "exists > 7" false (Site_set.exists (fun i -> i > 7) s);
  Alcotest.check set_testable "filter" (ss [ 4; 6 ]) (Site_set.filter (fun i -> i > 2) s)

let test_bounds () =
  Alcotest.check_raises "negative id" (Invalid_argument "Site_set: site id -1 outside [0, 62)")
    (fun () -> ignore (Site_set.singleton (-1)));
  Alcotest.check_raises "too large" (Invalid_argument "Site_set: site id 62 outside [0, 62)")
    (fun () -> ignore (Site_set.mem 62 Site_set.empty));
  (* The largest legal id works. *)
  Alcotest.(check int) "id 61" 61 (Site_set.max_elt (Site_set.singleton 61))

let test_pp () =
  Alcotest.(check string) "pp" "{0, 2}" (Fmt.str "%a" Site_set.pp (ss [ 0; 2 ]));
  Alcotest.(check string) "pp names" "{A, C}"
    (Fmt.str "%a" (Site_set.pp_names [| "A"; "B"; "C" |]) (ss [ 0; 2 ]))

(* Property tests against the reference Set implementation. *)

let gen_set = QCheck.Gen.(map (fun l -> Site_set.of_list l) (list_size (0 -- 12) (0 -- 15)))

let arb_set =
  QCheck.make gen_set ~print:(fun s -> Fmt.str "%a" Site_set.pp s)

let arb_pair = QCheck.pair arb_set arb_set

let props =
  let make name arb law = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count:500 ~name arb law) in
  [
    make "union agrees with reference" arb_pair (fun (a, b) ->
        Site_set.equal (Site_set.union a b) (of_ref (Ref_set.union (to_ref a) (to_ref b))));
    make "inter agrees with reference" arb_pair (fun (a, b) ->
        Site_set.equal (Site_set.inter a b) (of_ref (Ref_set.inter (to_ref a) (to_ref b))));
    make "diff agrees with reference" arb_pair (fun (a, b) ->
        Site_set.equal (Site_set.diff a b) (of_ref (Ref_set.diff (to_ref a) (to_ref b))));
    make "cardinal agrees with reference" arb_set (fun a ->
        Site_set.cardinal a = Ref_set.cardinal (to_ref a));
    make "subset agrees with reference" arb_pair (fun (a, b) ->
        Site_set.subset a b = Ref_set.subset (to_ref a) (to_ref b));
    make "to_list sorted and unique" arb_set (fun a ->
        let l = Site_set.to_list a in
        List.sort_uniq compare l = l);
    make "union is commutative" arb_pair (fun (a, b) ->
        Site_set.equal (Site_set.union a b) (Site_set.union b a));
    make "diff then union restores" arb_pair (fun (a, b) ->
        Site_set.equal (Site_set.union (Site_set.diff a b) (Site_set.inter a b)) a);
    make "max_elt is the largest member" arb_set (fun a ->
        Site_set.is_empty a
        || List.fold_left max (-1) (Site_set.to_list a) = Site_set.max_elt a);
  ]

let suite =
  [
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "singleton" `Quick test_singleton;
    Alcotest.test_case "universe" `Quick test_universe;
    Alcotest.test_case "add/remove" `Quick test_add_remove;
    Alcotest.test_case "set algebra" `Quick test_set_algebra;
    Alcotest.test_case "extrema" `Quick test_extrema;
    Alcotest.test_case "iteration" `Quick test_iteration;
    Alcotest.test_case "bounds checking" `Quick test_bounds;
    Alcotest.test_case "pretty printing" `Quick test_pp;
  ]
  @ props
