(* Shared test utilities. *)

let ss sites = Site_set.of_list sites

let set_testable = Alcotest.testable Site_set.pp Site_set.equal

let replica_testable = Alcotest.testable Replica.pp Replica.equal

let verdict_testable =
  Alcotest.testable Decision.pp_verdict (fun a b ->
      match (a, b) with
      | Decision.Granted x, Decision.Granted y ->
          Site_set.equal x.Decision.q y.Decision.q
          && Site_set.equal x.Decision.s y.Decision.s
          && Site_set.equal x.Decision.p_m y.Decision.p_m
      | Decision.Denied x, Decision.Denied y -> x = y
      | _ -> false)

(* Build a replica-state array over [n] sites; [specs] gives (site, o, v,
   partition-as-list); unspecified sites keep the initial state over the
   given universe. *)
let states ?(n = 8) ~universe specs =
  let arr = Array.make n (Replica.initial (ss universe)) in
  List.iter
    (fun (site, o, v, partition) ->
      arr.(site) <- Replica.make ~op_no:o ~version:v ~partition:(ss partition))
    specs;
  arr

let check_float = Alcotest.check (Alcotest.float 1e-9)

let check_float_tol tol = Alcotest.check (Alcotest.float tol)

let within ~tolerance expected actual =
  Float.abs (expected -. actual) <= tolerance

(* Relative closeness for stochastic comparisons. *)
let close_rel ~rel expected actual =
  if expected = 0.0 then Float.abs actual <= rel
  else Float.abs (actual -. expected) /. Float.abs expected <= rel

let qcheck_case ?(count = 200) ~name arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb law)
