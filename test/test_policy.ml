(* Policy: the six paper policies as view-driven state machines. *)

open Helpers

let ordering = Ordering.default 8
let one_segment = fun _ -> 0

let view components = { Policy.components = List.map ss components }

let make ?(universe = [ 0; 1; 2 ]) ?(segment_of = one_segment) kind =
  Policy.create kind ~universe:(ss universe) ~n_sites:8 ~segment_of ~ordering

let test_kind_names () =
  Alcotest.(check (list string)) "names"
    [ "MCV"; "DV"; "LDV"; "ODV"; "TDV"; "OTDV" ]
    (List.map Policy.kind_name Policy.all_kinds);
  List.iter
    (fun kind ->
      Alcotest.(check bool) "round trip" true
        (Policy.kind_of_string (Policy.kind_name kind) = Some kind))
    Policy.all_kinds;
  Alcotest.(check bool) "unknown" true (Policy.kind_of_string "XYZ" = None);
  Alcotest.(check bool) "case insensitive" true (Policy.kind_of_string "odv" = Some Policy.Odv)

let test_optimistic_classification () =
  Alcotest.(check (list bool)) "optimistic flags"
    [ false; false; false; true; false; true ]
    (List.map Policy.is_optimistic Policy.all_kinds)

let test_mcv_simple_majority () =
  let p = make Policy.Mcv in
  Alcotest.(check bool) "3 of 3" true (Policy.is_available p (view [ [ 0; 1; 2 ] ]));
  Alcotest.(check bool) "2 of 3" true (Policy.is_available p (view [ [ 0; 2 ]; [ 1 ] ]));
  Alcotest.(check bool) "1 of 3" false (Policy.is_available p (view [ [ 2 ] ]));
  Alcotest.(check bool) "split 1/1/1" false
    (Policy.is_available p (view [ [ 0 ]; [ 1 ]; [ 2 ] ]))

let test_mcv_even_tie_break () =
  let p = make ~universe:[ 0; 1; 2; 3 ] Policy.Mcv in
  (* Exactly half, holding site 0 (the maximum): available. *)
  Alcotest.(check bool) "half with max" true
    (Policy.is_available p (view [ [ 0; 1 ]; [ 2; 3 ] ]));
  (* The complementary half is not. *)
  Alcotest.(check bool) "half without max" false
    (Policy.is_available p (view [ [ 2; 3 ] ]));
  Alcotest.(check bool) "three of four" true (Policy.is_available p (view [ [ 1; 2; 3 ] ]))

let test_mcv_is_static () =
  let p = make Policy.Mcv in
  (* Quorums never adjust: repeated failures below majority always deny. *)
  Policy.handle_topology_change p (view [ [ 0; 1 ] ]);
  Policy.handle_topology_change p (view [ [ 0 ] ]);
  Alcotest.(check bool) "single copy never enough" false
    (Policy.is_available p (view [ [ 0 ] ]))

let test_dv_adapts () =
  let p = make Policy.Dv in
  (* 3 up -> 1 fails (instantaneous refresh shrinks quorum to {0,1}) *)
  Policy.handle_topology_change p (view [ [ 0; 1 ] ]);
  Alcotest.(check bool) "two of three" true (Policy.is_available p (view [ [ 0; 1 ] ]));
  (* Another failure: {0} is half of {0,1} — plain DV cannot proceed. *)
  Policy.handle_topology_change p (view [ [ 0 ] ]);
  Alcotest.(check bool) "tie unresolved" false (Policy.is_available p (view [ [ 0 ] ]))

let test_ldv_breaks_tie () =
  let p = make Policy.Ldv in
  Policy.handle_topology_change p (view [ [ 0; 1 ] ]);
  Policy.handle_topology_change p (view [ [ 0 ] ]);
  Alcotest.(check bool) "site 0 carries the tie" true (Policy.is_available p (view [ [ 0 ] ]));
  (* The mirror image: sites 1 then 0 fail; site 2 cannot carry it. *)
  let p = make Policy.Ldv in
  Policy.handle_topology_change p (view [ [ 1; 2 ] ]);
  Policy.handle_topology_change p (view [ [ 2 ] ]);
  Alcotest.(check bool) "site 2 loses the tie" false (Policy.is_available p (view [ [ 2 ] ]))

let test_dv_recovers_when_majority_returns () =
  let p = make Policy.Dv in
  Policy.handle_topology_change p (view [ [ 0; 1 ] ]);
  Policy.handle_topology_change p (view [ [ 0 ] ]);
  Alcotest.(check bool) "down" false (Policy.is_available p (view [ [ 0 ] ]));
  (* Site 1 repairs: {0,1} is again a majority of the block {0,1}. *)
  Policy.handle_topology_change p (view [ [ 0; 1 ] ]);
  Alcotest.(check bool) "back up" true (Policy.is_available p (view [ [ 0; 1 ] ]))

(* The optimistic policy keeps the stale quorum until an access happens —
   which is exactly what saves it when the partition heals first. *)
let test_odv_stale_quorum_semantics () =
  let p = make Policy.Odv in
  (* Site 0 fails; no access happens; ODV still has P = {0,1,2}. *)
  Policy.handle_topology_change p (view [ [ 1; 2 ] ]);
  Alcotest.(check bool) "still available on stale P" true
    (Policy.is_available p (view [ [ 1; 2 ] ]));
  (* Now site 1 also fails before any access: {2} is 1 of 3 — denied
     (LDV, having refreshed to {1,2} on the first failure, would also deny;
     but with P={0,1,2} a lone site denies too). *)
  Alcotest.(check bool) "one of three denied" false (Policy.is_available p (view [ [ 2 ] ]));
  (* Replay: failure of 0, then an access commits P = {1,2}, then 1 fails:
     {2} loses the tie to 1.  Still denied — but for the tie reason. *)
  let p = make Policy.Odv in
  Policy.handle_topology_change p (view [ [ 1; 2 ] ]);
  Alcotest.(check bool) "access granted" true (Policy.handle_access p (view [ [ 1; 2 ] ]));
  Alcotest.check replica_testable "access committed P={1,2}"
    (Replica.make ~op_no:2 ~version:1 ~partition:(ss [ 1; 2 ]))
    (Policy.replica p 1);
  Alcotest.(check bool) "2 loses tie to 1" false (Policy.is_available p (view [ [ 2 ] ]));
  (* Mirror: had site 2 failed instead, site 1 would carry the tie. *)
  Alcotest.(check bool) "1 carries tie" true (Policy.is_available p (view [ [ 1 ] ]))

(* ODV's advantage (the paper's configuration F discussion): a fast-
   repairing site fails; LDV immediately shrinks the quorum, ODV (with no
   access in between) does not.  A gateway holding a copy then fails,
   partitioning the survivors.  When the fast site returns, ODV's full
   partition set lets the pair {0,1} win the even-split tie, while LDV's
   shrunken quorum {1,3,5} leaves every group below a majority until the
   slow gateway is repaired. *)
let test_odv_beats_ldv_without_access () =
  let universe = [ 0; 1; 3; 5 ] in
  let odv = make ~universe Policy.Odv in
  let ldv = make ~universe Policy.Ldv in
  let feed p v = Policy.handle_topology_change p (view v) in
  (* Site 0 (fast repair) fails. *)
  feed odv [ [ 1; 3; 5 ] ];
  feed ldv [ [ 1; 3; 5 ] ];
  (* Gateway site 3 fails too, splitting 1 from 5. *)
  feed odv [ [ 1 ]; [ 5 ] ];
  feed ldv [ [ 1 ]; [ 5 ] ];
  Alcotest.(check bool) "both down during the double outage" false
    (Policy.is_available odv (view [ [ 1 ]; [ 5 ] ])
    || Policy.is_available ldv (view [ [ 1 ]; [ 5 ] ]));
  (* Site 0 returns (site 3 still down): components {0,1} and {5}. *)
  feed odv [ [ 0; 1 ]; [ 5 ] ];
  feed ldv [ [ 0; 1 ]; [ 5 ] ];
  Alcotest.(check bool) "ODV rides through on the stale quorum" true
    (Policy.is_available odv (view [ [ 0; 1 ]; [ 5 ] ]));
  Alcotest.(check bool) "LDV stuck until the gateway repairs" false
    (Policy.is_available ldv (view [ [ 0; 1 ]; [ 5 ] ]))

(* The two recovery disciplines for optimistic policies: reintegration at
   the next access (default) vs immediately at repair (Figure 3's retry
   loop). *)
let test_odv_recovery_disciplines () =
  let run recovery =
    let p =
      Policy.create ~recovery Policy.Odv ~universe:(ss [ 0; 1; 2 ]) ~n_sites:8
        ~segment_of:one_segment ~ordering
    in
    (* Site 2 fails; an access shrinks the quorum to {0, 1}. *)
    Policy.handle_topology_change p (view [ [ 0; 1 ] ]);
    ignore (Policy.handle_access p (view [ [ 0; 1 ] ]));
    Alcotest.check set_testable "quorum shrank" (ss [ 0; 1 ])
      (Replica.partition (Policy.replica p 0));
    (* Site 2 repairs. *)
    Policy.handle_topology_change p (view [ [ 0; 1; 2 ] ]);
    Policy.handle_repair p (view [ [ 0; 1; 2 ] ]) ~site:2;
    Replica.partition (Policy.replica p 0)
  in
  Alcotest.check set_testable "at-access: still {0,1} until the next access"
    (ss [ 0; 1 ]) (run `At_access);
  Alcotest.check set_testable "at-repair: reintegrated immediately"
    (ss [ 0; 1; 2 ]) (run `At_repair)

let test_recovery_at_repair_denied_in_minority () =
  let p =
    Policy.create ~recovery:`At_repair Policy.Odv ~universe:(ss [ 0; 1; 2 ]) ~n_sites:8
      ~segment_of:one_segment ~ordering
  in
  (* Quorum shrinks to {0, 1}; then both fail; 2 restarts alone. *)
  Policy.handle_topology_change p (view [ [ 0; 1 ] ]);
  ignore (Policy.handle_access p (view [ [ 0; 1 ] ]));
  Policy.handle_topology_change p (view []);
  Policy.handle_topology_change p (view [ [ 2 ] ]);
  Policy.handle_repair p (view [ [ 2 ] ]) ~site:2;
  Alcotest.(check bool) "stale lone site cannot rejoin" false
    (Policy.is_available p (view [ [ 2 ] ]));
  Alcotest.check set_testable "its state is untouched" (ss [ 0; 1; 2 ])
    (Replica.partition (Policy.replica p 2))

let segmented site = match site with 0 | 1 -> 0 | 2 -> 1 | _ -> 2

let test_tdv_carries_segment_votes () =
  let p = make ~universe:[ 0; 1; 2 ] ~segment_of:segmented Policy.Tdv in
  (* Sites 0, 1 share a segment; 2 is alone.  0 fails: 1 claims 0's vote
     immediately (2 of 3 counted: itself plus the dead 0). *)
  Policy.handle_topology_change p (view [ [ 1; 2 ] ]);
  Policy.handle_topology_change p (view [ [ 1 ] ]);
  Alcotest.(check bool) "1 alone, claiming 0" true (Policy.is_available p (view [ [ 1 ] ]))

(* Freshness at the policy level: with all copies on one segment, TDV acts
   as available copy — and a stale restarted site must NOT resurrect the
   file while the real last copy is still down. *)
let test_tdv_freshness_blocks_resurrection () =
  let p =
    Policy.create ~flavor:Decision.tdv_safe_flavor Policy.Tdv ~universe:(ss [ 0; 1; 2 ])
      ~n_sites:8 ~segment_of:one_segment ~ordering
  in
  let feed v = Policy.handle_topology_change p (view v) in
  feed [ [ 1; 2 ] ]; (* 0 fails; block -> {1,2} *)
  feed [ [ 2 ] ];    (* 1 fails; 2 claims 1's vote; block -> {2} *)
  feed [];           (* 2 fails: everyone down *)
  feed [ [ 0 ] ];    (* 0 restarts, stale and not fresh *)
  Alcotest.(check bool) "stale restart cannot resurrect" false
    (Policy.is_available p (view [ [ 0 ] ]));
  feed [ [ 0; 2 ] ]; (* the real last copy returns *)
  Alcotest.(check bool) "block member's return restores the file" true
    (Policy.is_available p (view [ [ 0; 2 ] ]));
  Alcotest.check set_testable "both fresh again" (ss [ 0; 2 ]) (Policy.fresh p)

let test_mutual_exclusion_across_components () =
  (* Feed views with several components; assert at most one grants.  The
     partition separates {0,1} from {2,3}, so give each pair its own
     segment — a partition may not split a segment (TDV's requirement). *)
  let segment_of site = if site <= 1 then 0 else 1 in
  List.iter
    (fun kind ->
      let p = make ~universe:[ 0; 1; 2; 3 ] ~segment_of kind in
      let v = view [ [ 0; 1 ]; [ 2; 3 ] ] in
      Policy.handle_topology_change p v;
      let granted_groups =
        List.filter
          (fun c -> Policy.is_available p { Policy.components = [ ss c ] })
          [ [ 0; 1 ]; [ 2; 3 ] ]
      in
      Alcotest.(check bool)
        (Policy.kind_name kind ^ ": at most one side granted")
        true
        (List.length granted_groups <= 1))
    Policy.all_kinds

(* Safety sweep: across random segmented topologies, random copy
   placements and random failure/repair walks, no policy ever grants two
   disjoint groups at once.  TDV runs in its safe flavor (the paper-literal
   flavor is knowingly unsafe under restarts, demonstrated elsewhere). *)
module Topology_gen = Dynvote_net.Topology_gen
module Connectivity = Dynvote_net.Connectivity
module Net_topology = Dynvote_net.Topology

let prop_safety_sweep =
  qcheck_case ~count:200 ~name:"no double grant on random topologies"
    QCheck.small_int
    (fun seed ->
      let rng = Dynvote_prng.Rng.of_seed (seed * 7919) in
      let topology = Topology_gen.random rng in
      let n_sites = Net_topology.n_sites topology in
      let universe = Topology_gen.random_placement rng topology in
      let connectivity = Connectivity.create topology in
      let ordering = Ordering.default n_sites in
      let policies =
        List.map
          (fun kind ->
            let flavor =
              match kind with
              | Policy.Tdv | Policy.Otdv -> Some Decision.tdv_safe_flavor
              | _ -> None
            in
            Policy.create ?flavor kind ~universe ~n_sites
              ~segment_of:(Net_topology.segment_of topology) ~ordering)
          Policy.all_kinds
      in
      let up = ref (Net_topology.all_sites topology) in
      let ok = ref true in
      for _ = 1 to 40 do
        (* Toggle one random site. *)
        let site = Dynvote_prng.Rng.int rng n_sites in
        up :=
          (if Site_set.mem site !up then Site_set.remove site !up
           else Site_set.add site !up);
        let v = Connectivity.view connectivity ~up:!up in
        List.iter
          (fun p ->
            Policy.handle_topology_change p v;
            if Site_set.mem site !up then Policy.handle_repair p v ~site;
            (* Occasionally deliver an access (drives the optimistic
               policies' commits). *)
            if Dynvote_prng.Rng.bool rng then ignore (Policy.handle_access p v);
            (* Mutual exclusion: probe each live component separately. *)
            let grants =
              List.filter
                (fun component ->
                  Policy.is_available p { Policy.components = [ component ] })
                v.Policy.components
            in
            if List.length grants > 1 then ok := false)
          policies
      done;
      !ok)

let test_create_validation () =
  Alcotest.check_raises "empty universe" (Invalid_argument "Policy.create: empty universe")
    (fun () ->
      ignore
        (Policy.create Policy.Mcv ~universe:Site_set.empty ~n_sites:8
           ~segment_of:one_segment ~ordering))

let suite =
  [
    Alcotest.test_case "kind names" `Quick test_kind_names;
    Alcotest.test_case "optimistic classification" `Quick test_optimistic_classification;
    Alcotest.test_case "MCV simple majority" `Quick test_mcv_simple_majority;
    Alcotest.test_case "MCV even-split tie-break" `Quick test_mcv_even_tie_break;
    Alcotest.test_case "MCV is static" `Quick test_mcv_is_static;
    Alcotest.test_case "DV adapts quorums" `Quick test_dv_adapts;
    Alcotest.test_case "LDV breaks ties" `Quick test_ldv_breaks_tie;
    Alcotest.test_case "DV recovers with majority" `Quick test_dv_recovers_when_majority_returns;
    Alcotest.test_case "ODV stale-quorum semantics" `Quick test_odv_stale_quorum_semantics;
    Alcotest.test_case "ODV vs LDV without accesses" `Quick test_odv_beats_ldv_without_access;
    Alcotest.test_case "TDV carries segment votes" `Quick test_tdv_carries_segment_votes;
    Alcotest.test_case "ODV recovery disciplines" `Quick test_odv_recovery_disciplines;
    Alcotest.test_case "at-repair recovery denied in minority" `Quick
      test_recovery_at_repair_denied_in_minority;
    Alcotest.test_case "TDV freshness blocks resurrection" `Quick
      test_tdv_freshness_blocks_resurrection;
    Alcotest.test_case "mutual exclusion across components" `Quick
      test_mutual_exclusion_across_components;
    Alcotest.test_case "creation validation" `Quick test_create_validation;
    prop_safety_sweep;
  ]
