(* Shared qcheck generators for the randomized suites (chaos, msgsim,
   differential, model checker).  Kept together so every suite shrinks in
   the same spaces and a counterexample found by one is directly
   replayable in another. *)

(* Integer-coded chaos schedules, decoded by
   {!Dynvote_chaos.Schedule.of_ints}.  Codes stay below 96 so every value
   decodes to a step with detail 0..3 — the space qcheck shrinks in. *)
let schedule_codes = QCheck.(list_of_size Gen.(int_range 5 25) (int_range 0 95))

(* Command scripts against a small cluster: each code selects a site
   ([cmd mod n_sites]) and an action ([cmd / n_sites mod 4]:
   fail / recover / write / read).  [int_bound 99] keeps three-site
   scripts in the decodable range while shrinking toward short prefixes. *)
let cluster_script = QCheck.(list_of_size (Gen.int_range 1 30) (int_bound 99))

(* As {!cluster_script}, for four-site universes with two extra actions:
   [cmd / 4 mod 6] selects fail / recover / write / read / partition /
   heal, and a partition code picks one of three fixed two-way splits by
   [cmd mod 3].  [int_bound 95] = 4 sites x 24 covers every combination. *)
let partition_script = QCheck.(list_of_size (Gen.int_range 1 30) (int_bound 95))
