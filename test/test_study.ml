(* Study: the end-to-end availability simulation.  These use short
   horizons — statistical agreement with the paper is checked in the
   benchmark harness; here we check structure, determinism and the
   relations that must hold exactly because all policies share a trace. *)

open Helpers
module Study = Dynvote_sim.Study
module Config = Dynvote_sim.Config

let params =
  { Study.default_parameters with horizon = 20_360.0; batches = 4; seed = 123 }

let results = lazy (Study.run ~parameters:params ())

let find config kind =
  List.find
    (fun r -> Config.label r.Study.config = config && r.Study.kind = kind)
    (Lazy.force results)

let test_shape () =
  let rs = Lazy.force results in
  Alcotest.(check int) "8 configs x 6 policies" 48 (List.length rs);
  List.iter
    (fun r ->
      let u = r.Study.unavailability in
      if u < 0.0 || u > 1.0 then Alcotest.failf "unavailability out of range: %f" u;
      check_float_tol 1e-6 "observed = horizon - warmup" 20_000.0 r.Study.observed_days)
    rs

let test_determinism () =
  let a = Study.run ~parameters:params ~configs:[ List.hd Config.ucsd_configurations ] () in
  let b = Study.run ~parameters:params ~configs:[ List.hd Config.ucsd_configurations ] () in
  List.iter2
    (fun x y ->
      check_float "same unavailability" x.Study.unavailability y.Study.unavailability;
      Alcotest.(check int) "same outages" x.Study.outages y.Study.outages)
    a b

let test_seed_matters () =
  let other = { params with seed = 999 } in
  let a = Study.run ~parameters:params ~kinds:[ Policy.Mcv ] () in
  let b = Study.run ~parameters:other ~kinds:[ Policy.Mcv ] () in
  Alcotest.(check bool) "different seeds differ somewhere" true
    (List.exists2 (fun x y -> x.Study.unavailability <> y.Study.unavailability) a b)

(* Exact identity from the paper: when every copy sits on its own segment
   (config C), topological claiming can never fire, so TDV = LDV and
   OTDV = ODV on the same trace, number for number. *)
let test_config_c_identities () =
  check_float "TDV = LDV on C" (find "C" Policy.Ldv).Study.unavailability
    (find "C" Policy.Tdv).Study.unavailability;
  check_float "OTDV = ODV on C" (find "C" Policy.Odv).Study.unavailability
    (find "C" Policy.Otdv).Study.unavailability;
  Alcotest.(check int) "same outage count (TDV/LDV)" (find "C" Policy.Ldv).Study.outages
    (find "C" Policy.Tdv).Study.outages

(* Orderings that hold with large margins in the paper and must hold on
   any reasonable trace. *)
let test_paper_orderings () =
  (* LDV dominates plain DV everywhere (it only adds grants). *)
  List.iter
    (fun label ->
      Alcotest.(check bool)
        (label ^ ": LDV <= DV")
        true
        ((find label Policy.Ldv).Study.unavailability
        <= (find label Policy.Dv).Study.unavailability +. 1e-12))
    [ "A"; "B"; "C"; "D"; "E"; "F"; "G"; "H" ];
  (* TDV dominates LDV (claiming only adds grants). *)
  List.iter
    (fun label ->
      Alcotest.(check bool)
        (label ^ ": TDV <= LDV")
        true
        ((find label Policy.Tdv).Study.unavailability
        <= (find label Policy.Ldv).Study.unavailability +. 1e-12))
    [ "A"; "B"; "C"; "D"; "E"; "F"; "G"; "H" ];
  (* DV is worse than MCV with three copies (the known DV weakness). *)
  List.iter
    (fun label ->
      Alcotest.(check bool)
        (label ^ ": DV >= MCV (3 copies)")
        true
        ((find label Policy.Dv).Study.unavailability
        >= (find label Policy.Mcv).Study.unavailability))
    [ "A"; "B"; "C"; "D" ];
  (* Config F's signature: DV collapses, far worse than everyone. *)
  Alcotest.(check bool) "F: DV at least 10x MCV" true
    ((find "F" Policy.Dv).Study.unavailability
    > 10.0 *. (find "F" Policy.Mcv).Study.unavailability)

let test_no_failures_always_available () =
  (* Indestructible sites: zero unavailability for every policy. *)
  let specs =
    Array.map
      (fun _ ->
        Dynvote_failures.Site_spec.create ~name:"solid" ~mttf_days:1e12
          ~hardware_fraction:0.0 ~restart_minutes:1.0 ~repair_constant_hours:0.0
          ~repair_exp_hours:0.0 ())
      (Array.make 8 ())
  in
  let results =
    Study.run
      ~parameters:{ params with horizon = 5_360.0; batches = 2 }
      ~specs ()
  in
  List.iter
    (fun r ->
      check_float
        (Policy.kind_name r.Study.kind ^ " never unavailable")
        0.0 r.Study.unavailability)
    results

let test_run_drivers_custom () =
  (* Strict MCV must be at least as unavailable as tie-breaking MCV. *)
  let universe = Config.copies (Option.get (Config.find "H")) in
  let ordering = Ordering.default 8 in
  let strict = Policy_extra.strict_mcv ~universe in
  let lex =
    Driver.of_policy
      (Policy.create Policy.Mcv ~universe ~n_sites:8
         ~segment_of:(Dynvote_net.Topology.segment_of Dynvote_net.Topology.ucsd)
         ~ordering)
  in
  match
    Study.run_drivers ~parameters:params
      ~drivers:[ ("strict", strict); ("lex", lex) ]
      ()
  with
  | [ ("strict", s); ("lex", l) ] ->
      Alcotest.(check bool) "strict >= lexicographic" true
        (s.Study.unavailability >= l.Study.unavailability -. 1e-12)
  | _ -> Alcotest.fail "unexpected result shape"

let test_parameter_validation () =
  Alcotest.check_raises "horizon" (Invalid_argument "Study: horizon must exceed warmup")
    (fun () ->
      ignore (Study.run ~parameters:{ params with horizon = 100.0; warmup = 360.0 } ()));
  Alcotest.check_raises "batches" (Invalid_argument "Study: need at least two batches")
    (fun () -> ignore (Study.run ~parameters:{ params with batches = 1 } ()));
  Alcotest.check_raises "access interval"
    (Invalid_argument "Study: access interval must be positive") (fun () ->
      ignore (Study.run ~parameters:{ params with access_interval = 0.0 } ()))

let test_access_rate_extremes () =
  (* As the access interval shrinks, ODV approaches LDV. *)
  let config = Option.get (Config.find "B") in
  let run interval =
    let parameters = { params with access_interval = interval } in
    let rs = Study.run ~parameters ~configs:[ config ] ~kinds:[ Policy.Odv; Policy.Ldv ] () in
    ( (List.find (fun r -> r.Study.kind = Policy.Odv) rs).Study.unavailability,
      (List.find (fun r -> r.Study.kind = Policy.Ldv) rs).Study.unavailability )
  in
  let odv_fast, ldv = run 0.0001 in
  Alcotest.(check bool) "frequent accesses converge to LDV" true
    (close_rel ~rel:0.05 ldv odv_fast || Float.abs (odv_fast -. ldv) < 1e-5)

let test_replicate () =
  let config = Option.get (Config.find "B") in
  let parameters = { Study.default_parameters with horizon = 10_360.0; batches = 2 } in
  let pooled =
    Study.replicate ~parameters ~replications:3 ~configs:[ config ]
      ~kinds:[ Policy.Mcv; Policy.Ldv ] ()
  in
  Alcotest.(check int) "one cell per (config, kind)" 2 (List.length pooled);
  List.iter
    (fun ((_, kind), (r : Study.replicated)) ->
      Alcotest.(check int)
        (Policy.kind_name kind ^ " three seeds")
        3
        (List.length r.Study.per_seed);
      (* The pooled mean is the average of the per-seed values. *)
      let mean = List.fold_left ( +. ) 0.0 r.Study.per_seed /. 3.0 in
      check_float_tol 1e-12 "pooled mean" mean r.Study.mean_unavailability;
      Alcotest.(check bool) "half width finite and non-negative" true
        (r.Study.half_width_95 >= 0.0);
      (* Different seeds give different (but same-magnitude) values. *)
      Alcotest.(check bool) "seeds differ" true
        (List.sort_uniq compare r.Study.per_seed <> [ List.hd r.Study.per_seed ]
        || List.for_all (fun x -> x = 0.0) r.Study.per_seed))
    pooled;
  (* MCV pooled unavailability exceeds LDV's. *)
  let get kind =
    (snd (List.find (fun ((_, k), _) -> k = kind) pooled)).Study.mean_unavailability
  in
  Alcotest.(check bool) "MCV > LDV pooled" true (get Policy.Mcv > get Policy.Ldv)

let test_replicate_validation () =
  Alcotest.check_raises "needs two"
    (Invalid_argument "Study.replicate: need at least two replications") (fun () ->
      ignore (Study.replicate ~replications:1 ()))

let suite =
  [
    Alcotest.test_case "result shape" `Quick test_shape;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed matters" `Quick test_seed_matters;
    Alcotest.test_case "config C: TDV=LDV, OTDV=ODV" `Quick test_config_c_identities;
    Alcotest.test_case "paper orderings" `Quick test_paper_orderings;
    Alcotest.test_case "no failures, no unavailability" `Quick test_no_failures_always_available;
    Alcotest.test_case "custom drivers" `Quick test_run_drivers_custom;
    Alcotest.test_case "parameter validation" `Quick test_parameter_validation;
    Alcotest.test_case "access-rate extremes" `Quick test_access_rate_extremes;
    Alcotest.test_case "replications" `Quick test_replicate;
    Alcotest.test_case "replication validation" `Quick test_replicate_validation;
  ]
