(* Golden tests: the paper's §2 and §3 worked examples, step by step. *)

open Helpers

(* §2: three copies at A, B, C; ordering A > B > C. *)
let test_section2_walkthrough () =
  let s = Scenario.create ~names:[| "A"; "B"; "C" |] () in
  (* Initially o = v = 1 and P = {A,B,C} everywhere. *)
  Alcotest.check replica_testable "initial A"
    (Replica.make ~op_no:1 ~version:1 ~partition:(ss [ 0; 1; 2 ]))
    (Scenario.state s "A");
  (* Seven writes: o = v = 8. *)
  ignore (Scenario.writes s 7);
  List.iter
    (fun site ->
      Alcotest.check replica_testable ("after 7 writes " ^ site)
        (Replica.make ~op_no:8 ~version:8 ~partition:(ss [ 0; 1; 2 ]))
        (Scenario.state s site))
    [ "A"; "B"; "C" ];
  (* B fails: no state change anywhere (information moves at access time). *)
  Scenario.fail s "B";
  Alcotest.check replica_testable "B frozen"
    (Replica.make ~op_no:8 ~version:8 ~partition:(ss [ 0; 1; 2 ]))
    (Scenario.state s "B");
  (* Three more writes: {A, C} is the new majority partition, o = v = 11. *)
  ignore (Scenario.writes s 3);
  Alcotest.check replica_testable "A after 3 writes"
    (Replica.make ~op_no:11 ~version:11 ~partition:(ss [ 0; 2 ]))
    (Scenario.state s "A");
  Alcotest.check replica_testable "C after 3 writes"
    (Replica.make ~op_no:11 ~version:11 ~partition:(ss [ 0; 2 ]))
    (Scenario.state s "C");
  (* The A-C link fails: {A} and {C} each hold one copy of the previous
     majority partition.  A wins the tie (A > C). *)
  Scenario.partition s [ [ "A"; "B" ]; [ "C" ] ];
  Alcotest.(check bool) "file still available (at A)" true (Scenario.is_available s);
  (* Four more writes, all granted to A alone: o = v = 15, P = {A}. *)
  ignore (Scenario.writes s 4);
  Alcotest.check replica_testable "A after 4 writes"
    (Replica.make ~op_no:15 ~version:15 ~partition:(ss [ 0 ]))
    (Scenario.state s "A");
  Alcotest.check replica_testable "C untouched"
    (Replica.make ~op_no:11 ~version:11 ~partition:(ss [ 0; 2 ]))
    (Scenario.state s "C")

(* The same §2 history under plain DV: the tie is never broken, so after
   the A-C partition the file is unavailable on both sides. *)
let test_section2_plain_dv () =
  let s = Scenario.create ~flavor:Decision.dv_flavor ~names:[| "A"; "B"; "C" |] () in
  ignore (Scenario.writes s 7);
  Scenario.fail s "B";
  ignore (Scenario.writes s 3);
  Scenario.partition s [ [ "A"; "B" ]; [ "C" ] ];
  Alcotest.(check bool) "unavailable everywhere" false (Scenario.is_available s);
  Alcotest.(check bool) "writes denied" true (Scenario.write s = None)

(* §3: A, B on segment alpha; C on gamma; D on delta.  State as printed in
   the paper: o,v: A=B=15, C=11, D=8; P_A = P_B = {A,B}; P_C = {A,B,C};
   P_D = {A,B,C,D}.  When A fails, B claims A's vote under TDV. *)
let segment_of site = match site with 0 | 1 -> 0 | 2 -> 1 | _ -> 2

let build_section3 flavor =
  let s = Scenario.create ~flavor ~segment_of ~names:[| "A"; "B"; "C"; "D" |] () in
  (* Reach the paper's state through protocol history:
     7 writes with everyone up -> o,v=8 and P={A,B,C,D};
     D fails; 3 writes -> {A,B,C} at o,v=11;
     C fails; 4 writes -> {A,B} at o,v=15. *)
  ignore (Scenario.writes s 7);
  Scenario.fail s "D";
  ignore (Scenario.writes s 3);
  Scenario.fail s "C";
  ignore (Scenario.writes s 4);
  s

let test_section3_state () =
  let s = build_section3 Decision.tdv_flavor in
  Alcotest.check replica_testable "A"
    (Replica.make ~op_no:15 ~version:15 ~partition:(ss [ 0; 1 ]))
    (Scenario.state s "A");
  Alcotest.check replica_testable "B"
    (Replica.make ~op_no:15 ~version:15 ~partition:(ss [ 0; 1 ]))
    (Scenario.state s "B");
  Alcotest.check replica_testable "C"
    (Replica.make ~op_no:11 ~version:11 ~partition:(ss [ 0; 1; 2 ]))
    (Scenario.state s "C");
  Alcotest.check replica_testable "D"
    (Replica.make ~op_no:8 ~version:8 ~partition:(ss [ 0; 1; 2; 3 ]))
    (Scenario.state s "D")

let test_section3_tdv_claims_vote () =
  (* Under LDV, B cannot continue after A fails (A is the maximum). *)
  let ldv = build_section3 Decision.ldv_flavor in
  Scenario.fail ldv "A";
  Alcotest.(check bool) "LDV: unavailable" false (Scenario.is_available ldv);
  (* Under TDV, B knows A sits on its own segment alpha: if alpha were
     down B would be down too, so A must simply be dead.  B carries A's
     vote and becomes the majority block. *)
  let tdv = build_section3 Decision.tdv_flavor in
  Scenario.fail tdv "A";
  Alcotest.(check bool) "TDV: still available" true (Scenario.is_available tdv);
  (match Scenario.write tdv with
  | Some component -> Alcotest.check set_testable "write granted at B" (ss [ 1 ]) component
  | None -> Alcotest.fail "TDV write denied");
  Alcotest.check replica_testable "B continues alone"
    (Replica.make ~op_no:16 ~version:16 ~partition:(ss [ 1 ]))
    (Scenario.state tdv "B")

let test_recovery_rejoins () =
  let s = Scenario.create ~names:[| "A"; "B"; "C" |] () in
  ignore (Scenario.writes s 4);
  Scenario.fail s "C";
  ignore (Scenario.writes s 2);
  (* C restarts and can reach the quorum: it rejoins and becomes current. *)
  Alcotest.(check bool) "recover succeeds" true (Scenario.recover s "C");
  Alcotest.check replica_testable "C current again"
    (Replica.make ~op_no:8 ~version:7 ~partition:(ss [ 0; 1; 2 ]))
    (Scenario.state s "C")

let test_recovery_blocked_in_minority () =
  let s = Scenario.create ~names:[| "A"; "B"; "C" |] () in
  ignore (Scenario.writes s 4);
  Scenario.fail s "C";
  ignore (Scenario.writes s 2);
  Scenario.partition s [ [ "A"; "B" ]; [ "C" ] ];
  Alcotest.(check bool) "recover denied across partition" false (Scenario.recover s "C")

let test_partition_validation () =
  let s = Scenario.create ~names:[| "A"; "B" |] () in
  Alcotest.check_raises "must cover"
    (Invalid_argument "Scenario.partition: groups must cover every site exactly once")
    (fun () -> Scenario.partition s [ [ "A" ] ])

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let test_table_rendering () =
  let s = Scenario.create ~names:[| "A"; "B"; "C" |] () in
  ignore (Scenario.writes s 7);
  let table = Fmt.str "%a" Scenario.pp_table s in
  Alcotest.(check bool) "mentions o, v = 8" true (contains ~needle:"o, v = 8" table);
  Alcotest.(check bool) "mentions P = {A, B, C}" true
    (contains ~needle:"P = {A, B, C}" table);
  Scenario.fail s "B";
  let table = Fmt.str "%a" Scenario.pp_table s in
  Alcotest.(check bool) "marks B down" true (contains ~needle:"B (down)" table)

let suite =
  [
    Alcotest.test_case "§2 walkthrough (LDV)" `Quick test_section2_walkthrough;
    Alcotest.test_case "§2 under plain DV" `Quick test_section2_plain_dv;
    Alcotest.test_case "§3 state construction" `Quick test_section3_state;
    Alcotest.test_case "§3 TDV claims the dead vote" `Quick test_section3_tdv_claims_vote;
    Alcotest.test_case "recovery rejoins" `Quick test_recovery_rejoins;
    Alcotest.test_case "recovery blocked in minority" `Quick test_recovery_blocked_in_minority;
    Alcotest.test_case "partition validation" `Quick test_partition_validation;
    Alcotest.test_case "state table rendering" `Quick test_table_rendering;
  ]
