(* Text tables and formatting helpers. *)

module Text_table = Dynvote_report.Text_table

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let test_render () =
  let t =
    Text_table.create ~aligns:[ Text_table.Left; Text_table.Right ]
      ~header:[ "Name"; "Value" ] ()
  in
  Text_table.add_row t [ "alpha"; "1" ];
  Text_table.add_row t [ "b"; "22.5" ];
  let s = Text_table.to_string t in
  Alcotest.(check bool) "header present" true (contains ~needle:"| Name" s);
  Alcotest.(check bool) "left aligned" true (contains ~needle:"| alpha |" s);
  Alcotest.(check bool) "right aligned" true (contains ~needle:"|  22.5 |" s);
  Alcotest.(check int) "rows" 2 (Text_table.n_rows t)

let test_row_validation () =
  let t = Text_table.create ~header:[ "a"; "b" ] () in
  Alcotest.check_raises "cell count"
    (Invalid_argument "Text_table.add_row: wrong number of cells") (fun () ->
      Text_table.add_row t [ "only one" ])

let test_markdown () =
  let t =
    Text_table.create ~aligns:[ Text_table.Left; Text_table.Right ] ~header:[ "k"; "v" ] ()
  in
  Text_table.add_row t [ "x"; "1" ];
  let s = Fmt.str "%a" Text_table.pp_markdown t in
  Alcotest.(check bool) "markdown header" true (contains ~needle:"| k | v |" s);
  Alcotest.(check bool) "alignment row" true (contains ~needle:"|:---|---:|" s)

let test_cells () =
  Alcotest.(check string) "float" "0.123457" (Text_table.cell_float 0.1234567);
  Alcotest.(check string) "float decimals" "0.12" (Text_table.cell_float ~decimals:2 0.1234);
  Alcotest.(check string) "nan renders dash" "-" (Text_table.cell_float Float.nan);
  Alcotest.(check string) "scientific" "1.23e-04" (Text_table.cell_sci 0.000123);
  Alcotest.(check string) "int" "42" (Text_table.cell_int 42)

module Csv = Dynvote_report.Csv

let test_csv_basic () =
  Alcotest.(check string) "simple"
    "a,b\r\n1,2\r\n"
    (Csv.to_string ~header:[ "a"; "b" ] [ [ "1"; "2" ] ])

let test_csv_quoting () =
  let out =
    Csv.to_string ~header:[ "name"; "note" ]
      [ [ "x,y"; "says \"hi\"" ]; [ "line\nbreak"; "plain" ] ]
  in
  Alcotest.(check bool) "comma quoted" true
    (String.length out > 0 && contains ~needle:"\"x,y\"" out);
  Alcotest.(check bool) "quote doubled" true (contains ~needle:"\"says \"\"hi\"\"\"" out);
  Alcotest.(check bool) "newline quoted" true (contains ~needle:"\"line\nbreak\"" out)

let test_csv_write_roundtrip () =
  let path = Filename.temp_file "dynvote" ".csv" in
  Csv.write ~path ~header:[ "k" ] [ [ "v1" ]; [ "v2" ] ];
  let ic = open_in_bin path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "file contents" "k\r\nv1\r\nv2\r\n" contents

let test_csv_of_table () =
  let t = Text_table.create ~header:[ "a"; "b" ] () in
  Text_table.add_row t [ "1"; "2" ];
  Alcotest.(check string) "rows only" "1,2\r\n" (Csv.of_table t)

module Ascii_plot = Dynvote_report.Ascii_plot

let test_plot_render () =
  let out =
    Ascii_plot.render ~width:30 ~height:8
      [
        { Ascii_plot.label = "up"; points = [ (0.0, 0.0); (1.0, 1.0); (2.0, 2.0) ] };
        { Ascii_plot.label = "down"; points = [ (0.0, 2.0); (1.0, 1.0); (2.0, 0.0) ] };
      ]
  in
  Alcotest.(check bool) "has first glyph" true (contains ~needle:"*" out);
  Alcotest.(check bool) "has second glyph" true (contains ~needle:"o" out);
  Alcotest.(check bool) "legend present" true (contains ~needle:"* = up" out);
  Alcotest.(check int) "line count" (8 + 3)
    (List.length (List.filter (fun l -> l <> "") (String.split_on_char '\n' out)))

let test_plot_log_scale () =
  let out =
    Ascii_plot.render ~width:20 ~height:6 ~scale:Ascii_plot.Log10
      [ { Ascii_plot.label = "u"; points = [ (1.0, 0.001); (2.0, 0.1); (3.0, 10.0) ] } ]
  in
  Alcotest.(check bool) "top label is max" true (contains ~needle:"10" out);
  Alcotest.check_raises "log of zero"
    (Invalid_argument "Ascii_plot.render: log scale needs positive y") (fun () ->
      ignore
        (Ascii_plot.render ~scale:Ascii_plot.Log10
           [ { Ascii_plot.label = "bad"; points = [ (0.0, 0.0) ] } ]))

let test_plot_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Ascii_plot.render: no series")
    (fun () -> ignore (Ascii_plot.render []));
  Alcotest.check_raises "tiny" (Invalid_argument "Ascii_plot.render: too small")
    (fun () ->
      ignore
        (Ascii_plot.render ~width:2 ~height:2
           [ { Ascii_plot.label = "x"; points = [ (0.0, 0.0) ] } ]))

let suite =
  [
    Alcotest.test_case "render" `Quick test_render;
    Alcotest.test_case "row validation" `Quick test_row_validation;
    Alcotest.test_case "markdown" `Quick test_markdown;
    Alcotest.test_case "cell formatting" `Quick test_cells;
    Alcotest.test_case "csv basics" `Quick test_csv_basic;
    Alcotest.test_case "csv quoting" `Quick test_csv_quoting;
    Alcotest.test_case "csv write round-trip" `Quick test_csv_write_roundtrip;
    Alcotest.test_case "csv of table" `Quick test_csv_of_table;
    Alcotest.test_case "plot render" `Quick test_plot_render;
    Alcotest.test_case "plot log scale" `Quick test_plot_log_scale;
    Alcotest.test_case "plot validation" `Quick test_plot_validation;
  ]
