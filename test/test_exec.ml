(* The domain-pool execution layer: deterministic fan-out ordering,
   exception propagation, the no-nested-pools rule, and the end-to-end
   guarantee the layer is sold on — study results and model-checker
   verdicts independent of the job count. *)

module Pool = Dynvote_exec.Pool
module Study = Dynvote_sim.Study
module Config = Dynvote_sim.Config
module Checker = Dynvote_mc.Checker
module Explorer = Dynvote_mc.Explorer
module Harness = Dynvote_chaos.Harness

let test_map_ordering () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let xs = Array.init 257 (fun i -> i) in
      (* Uneven per-item work, so completion order differs from index
         order and only index-keyed joining gives the right answer. *)
      let f i =
        let acc = ref 0 in
        for k = 0 to (i * 37 mod 1000) + 1 do
          acc := !acc + ((i + k) * (i + k))
        done;
        (i, !acc)
      in
      Alcotest.(check bool)
        "map_array joins by index" true
        (Pool.map_array pool f xs = Array.map f xs);
      let ys = List.init 100 (fun i -> i * 3) in
      Alcotest.(check (list int))
        "map_list preserves order"
        (List.map (fun x -> x + 1) ys)
        (Pool.map_list pool (fun x -> x + 1) ys))

exception Boom of int

let test_exception_propagation () =
  Pool.with_pool ~jobs:4 (fun pool ->
      (match
         Pool.map_array pool
           (fun i -> if i = 37 || i = 73 then raise (Boom i) else i)
           (Array.init 128 (fun i -> i))
       with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom i ->
          Alcotest.(check int) "lowest failing index re-raised" 37 i);
      (* The pool survives a failed batch. *)
      Alcotest.(check bool)
        "pool usable after exception" true
        (Pool.map_array pool (fun i -> i * 2) (Array.init 16 (fun i -> i))
        = Array.init 16 (fun i -> i * 2)))

let test_no_nested_pools () =
  Alcotest.(check bool) "not in a worker outside" false (Pool.in_worker ());
  Pool.with_pool ~jobs:4 (fun pool ->
      let observations =
        Pool.map_list pool
          (fun _ -> (Pool.in_worker (), Pool.with_pool ~jobs:4 Pool.jobs))
          [ 1; 2; 3; 4 ]
      in
      List.iter
        (fun (in_worker, inner_jobs) ->
          Alcotest.(check bool) "task sees in_worker" true in_worker;
          Alcotest.(check int) "inner pool collapses to sequential" 1 inner_jobs)
        observations)

let small_parameters = { Study.default_parameters with Study.horizon = 3_360.0 }

let small_configs =
  List.filter (fun c -> List.mem (Config.label c) [ "A"; "E" ]) Config.ucsd_configurations

let test_study_jobs_identical () =
  let run jobs =
    Study.run ~parameters:small_parameters ~configs:small_configs
      ~kinds:[ Policy.Mcv; Policy.Ldv; Policy.Tdv ] ~jobs ()
  in
  (* [compare], not [=]: mean_outage_days is nan for never-unavailable
     cells, and nan must compare equal to itself here. *)
  Alcotest.(check bool)
    "Study.run bit-identical at -j1 and -j4" true
    (compare (run 1) (run 4) = 0)

let test_replicate_jobs_identical () =
  let replicate jobs =
    Study.replicate ~parameters:small_parameters ~replications:3
      ~configs:small_configs ~kinds:[ Policy.Ldv ] ~jobs ()
  in
  Alcotest.(check bool)
    "Study.replicate identical at -j1 and -j4" true
    (compare (replicate 1) (replicate 4) = 0)

let mc_summary (report : Checker.report) =
  let r = report.Checker.result in
  match r.Explorer.outcome with
  | Explorer.Safe { closed } ->
      Printf.sprintf "safe depth=%d closed=%b distinct=%d" r.Explorer.depth closed
        r.Explorer.distinct
  | Explorer.Violation { trace; _ } ->
      Printf.sprintf "violation len=%d replays=%b" (List.length trace)
        (match report.Checker.verdict with
        | Checker.Counterexample { replay_matches; _ } -> replay_matches
        | _ -> false)
  | Explorer.Out_of_budget -> Printf.sprintf "budget depth=%d" r.Explorer.depth

let check_mc_parity ~name ~depth =
  let p = Option.get (Harness.policy_of_string name) in
  let report jobs = Checker.check ~policy:p ~depth ~jobs (Checker.paper_config ()) in
  Alcotest.(check string)
    (name ^ " verdict identical at -j1 and -j4")
    (mc_summary (report 1))
    (mc_summary (report 4))

let test_mc_safe_jobs_identical () = check_mc_parity ~name:"dv" ~depth:4

let test_mc_violation_jobs_identical () = check_mc_parity ~name:"tdv" ~depth:5

let suite =
  [
    Alcotest.test_case "pool map ordering" `Quick test_map_ordering;
    Alcotest.test_case "pool exception propagation" `Quick test_exception_propagation;
    Alcotest.test_case "no nested pools" `Quick test_no_nested_pools;
    Alcotest.test_case "study identical across jobs" `Quick test_study_jobs_identical;
    Alcotest.test_case "replicate identical across jobs" `Quick
      test_replicate_jobs_identical;
    Alcotest.test_case "mc safe verdict identical across jobs" `Quick
      test_mc_safe_jobs_identical;
    Alcotest.test_case "mc violation verdict identical across jobs" `Quick
      test_mc_violation_jobs_identical;
  ]
