(* The domain-pool execution layer: deterministic fan-out ordering,
   exception propagation, the no-nested-pools rule, and the end-to-end
   guarantee the layer is sold on — study results and model-checker
   verdicts independent of the job count. *)

module Pool = Dynvote_exec.Pool
module Study = Dynvote_sim.Study
module Config = Dynvote_sim.Config
module Checker = Dynvote_mc.Checker
module Explorer = Dynvote_mc.Explorer
module Harness = Dynvote_chaos.Harness

let test_map_ordering () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let xs = Array.init 257 (fun i -> i) in
      (* Uneven per-item work, so completion order differs from index
         order and only index-keyed joining gives the right answer. *)
      let f i =
        let acc = ref 0 in
        for k = 0 to (i * 37 mod 1000) + 1 do
          acc := !acc + ((i + k) * (i + k))
        done;
        (i, !acc)
      in
      Alcotest.(check bool)
        "map_array joins by index" true
        (Pool.map_array pool f xs = Array.map f xs);
      let ys = List.init 100 (fun i -> i * 3) in
      Alcotest.(check (list int))
        "map_list preserves order"
        (List.map (fun x -> x + 1) ys)
        (Pool.map_list pool (fun x -> x + 1) ys))

exception Boom of int

let test_exception_propagation () =
  Pool.with_pool ~jobs:4 (fun pool ->
      (match
         Pool.map_array pool
           (fun i -> if i = 37 || i = 73 then raise (Boom i) else i)
           (Array.init 128 (fun i -> i))
       with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom i ->
          Alcotest.(check int) "lowest failing index re-raised" 37 i);
      (* The pool survives a failed batch. *)
      Alcotest.(check bool)
        "pool usable after exception" true
        (Pool.map_array pool (fun i -> i * 2) (Array.init 16 (fun i -> i))
        = Array.init 16 (fun i -> i * 2)))

let test_no_nested_pools () =
  Alcotest.(check bool) "not in a worker outside" false (Pool.in_worker ());
  Pool.with_pool ~jobs:4 (fun pool ->
      let observations =
        Pool.map_list pool
          (fun _ -> (Pool.in_worker (), Pool.with_pool ~jobs:4 Pool.jobs))
          [ 1; 2; 3; 4 ]
      in
      List.iter
        (fun (in_worker, inner_jobs) ->
          Alcotest.(check bool) "task sees in_worker" true in_worker;
          Alcotest.(check int) "inner pool collapses to sequential" 1 inner_jobs)
        observations)

let small_parameters = { Study.default_parameters with Study.horizon = 3_360.0 }

let small_configs =
  List.filter (fun c -> List.mem (Config.label c) [ "A"; "E" ]) Config.ucsd_configurations

let test_study_jobs_identical () =
  let run jobs =
    Study.run ~parameters:small_parameters ~configs:small_configs
      ~kinds:[ Policy.Mcv; Policy.Ldv; Policy.Tdv ] ~jobs ()
  in
  (* [compare], not [=]: mean_outage_days is nan for never-unavailable
     cells, and nan must compare equal to itself here. *)
  Alcotest.(check bool)
    "Study.run bit-identical at -j1 and -j4" true
    (compare (run 1) (run 4) = 0)

let test_replicate_jobs_identical () =
  let replicate jobs =
    Study.replicate ~parameters:small_parameters ~replications:3
      ~configs:small_configs ~kinds:[ Policy.Ldv ] ~jobs ()
  in
  Alcotest.(check bool)
    "Study.replicate identical at -j1 and -j4" true
    (compare (replicate 1) (replicate 4) = 0)

let mc_summary (report : Checker.report) =
  let r = report.Checker.result in
  match r.Explorer.outcome with
  | Explorer.Safe { closed } ->
      Printf.sprintf "safe depth=%d closed=%b distinct=%d" r.Explorer.depth closed
        r.Explorer.distinct
  | Explorer.Violation { trace; _ } ->
      Printf.sprintf "violation len=%d replays=%b" (List.length trace)
        (match report.Checker.verdict with
        | Checker.Counterexample { replay_matches; _ } -> replay_matches
        | _ -> false)
  | Explorer.Out_of_budget -> Printf.sprintf "budget depth=%d" r.Explorer.depth

let check_mc_parity ~name ~depth =
  let p = Option.get (Harness.policy_of_string name) in
  let report jobs = Checker.check ~policy:p ~depth ~jobs (Checker.paper_config ()) in
  Alcotest.(check string)
    (name ^ " verdict identical at -j1 and -j4")
    (mc_summary (report 1))
    (mc_summary (report 4))

let test_mc_safe_jobs_identical () = check_mc_parity ~name:"dv" ~depth:4

let test_mc_violation_jobs_identical () = check_mc_parity ~name:"tdv" ~depth:5

(* --- the work-stealing frontier -------------------------------------- *)

module Deque = Dynvote_exec.Deque

(* Single-domain oracle check: with no concurrency the Chase–Lev CAS
   always succeeds, so [Retry] is impossible and every operation must
   agree exactly with a reference two-ended queue (push at the back, pop
   from the back, steal from the front).  Ops are encoded as ints:
   0 = pop, 1 = steal, n >= 2 = push n. *)
let deque_matches_model ops =
  let d = Deque.create () in
  let model = ref [] (* front .. back *) in
  let ok = ref true in
  let push v =
    Deque.push d v;
    model := !model @ [ v ]
  in
  let pop () =
    let expected =
      match List.rev !model with
      | [] -> None
      | v :: rest ->
          model := List.rev rest;
          Some v
    in
    if Deque.pop d <> expected then ok := false
  in
  let steal () =
    let expected =
      match !model with
      | [] -> Deque.Empty
      | v :: rest ->
          model := rest;
          Deque.Stolen v
    in
    if Deque.steal d <> expected then ok := false
  in
  List.iter
    (fun op -> if op = 0 then pop () else if op = 1 then steal () else push op)
    ops;
  if Deque.size d <> List.length !model then ok := false;
  while !model <> [] do
    pop ()
  done;
  !ok && Deque.pop d = None && Deque.steal d = Deque.Empty

let test_deque_model =
  Helpers.qcheck_case ~count:500 ~name:"deque agrees with two-ended queue model"
    QCheck.(list (int_range 0 50))
    deque_matches_model

(* The concurrent contract: under one owner (pushing and popping) and
   several thief domains, every pushed value is consumed exactly once —
   nothing lost, nothing duplicated.  An atomic consumed counter is the
   join condition; the merged multiset of everyone's takes must be
   exactly the pushed set. *)
let test_deque_concurrent_exactly_once () =
  let n = 20_000 and thieves = 3 in
  let d = Deque.create () in
  let consumed = Atomic.make 0 in
  let thief_domains =
    List.init thieves (fun _ ->
        Domain.spawn (fun () ->
            let mine = ref [] in
            while Atomic.get consumed < n do
              match Deque.steal d with
              | Deque.Stolen v ->
                  mine := v :: !mine;
                  Atomic.incr consumed
              | Deque.Empty | Deque.Retry -> Domain.cpu_relax ()
            done;
            !mine))
  in
  let owner = ref [] in
  let take = function
    | Some v ->
        owner := v :: !owner;
        Atomic.incr consumed
    | None -> Domain.cpu_relax ()
  in
  for v = 0 to n - 1 do
    Deque.push d v;
    (* Interleave owner pops so the owner/thief last-element race is
       actually exercised, not just bulk stealing. *)
    if v mod 3 = 0 then take (Deque.pop d)
  done;
  while Atomic.get consumed < n do
    take (Deque.pop d)
  done;
  let stolen = List.concat_map Domain.join thief_domains in
  Alcotest.(check bool)
    "every pushed value consumed exactly once" true
    (List.sort compare (!owner @ stolen) = List.init n (fun i -> i))

(* [run_stealing] on a task tree of known size: every node must be
   executed exactly once regardless of the worker count, and the
   scheduler must return one stats record per worker. *)
let tree_nodes ~fanout ~depth =
  let rec go d = if d = 0 then 1 else 1 + (fanout * go (d - 1)) in
  go depth

let total_tasks stats =
  Array.fold_left (fun acc s -> acc + s.Pool.tasks_executed) 0 stats

let test_run_stealing_counts () =
  let fanout = 3 and depth = 7 in
  let expected = tree_nodes ~fanout ~depth in
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          let stats =
            Pool.run_stealing pool ~roots:[| depth |]
              ~init:(fun _ -> ())
              ~run:(fun () ~push d ->
                if d > 0 then
                  for _ = 1 to fanout do
                    push (d - 1)
                  done)
              ()
          in
          Alcotest.(check int) "one stats record per worker" (Pool.jobs pool)
            (Array.length stats);
          Alcotest.(check int)
            (Printf.sprintf "all %d tree tasks executed once at -j%d" expected
               jobs)
            expected (total_tasks stats)))
    [ 1; 4 ]

let test_run_stealing_exception () =
  Pool.with_pool ~jobs:4 (fun pool ->
      (match
         Pool.run_stealing pool ~roots:[| 6 |]
           ~init:(fun _ -> ())
           ~run:(fun () ~push d ->
             if d = 2 then raise (Boom d)
             else if d > 0 then (
               push (d - 1);
               push (d - 1)))
           ()
       with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom i -> Alcotest.(check int) "task exception re-raised" 2 i);
      (* The pool survives an aborted schedule. *)
      let stats =
        Pool.run_stealing pool ~roots:[| 0 |]
          ~init:(fun _ -> ())
          ~run:(fun () ~push:_ _ -> ())
          ()
      in
      Alcotest.(check int) "pool usable after abort" 1 (total_tasks stats))

(* The end-to-end guarantee the frontier is sold on: model-checker
   verdicts independent of both the job count and the scheduling policy
   (stealing frontier vs root-alphabet shards). *)
let check_mc_steal_parity ~name ~depth =
  let p = Option.get (Harness.policy_of_string name) in
  let report ~jobs ~steal =
    Checker.check ~policy:p ~depth ~jobs ~steal (Checker.paper_config ())
  in
  let base = mc_summary (report ~jobs:1 ~steal:true) in
  Alcotest.(check string)
    (name ^ " -j4 stealing matches -j1")
    base
    (mc_summary (report ~jobs:4 ~steal:true));
  Alcotest.(check string)
    (name ^ " -j4 sharded matches -j1")
    base
    (mc_summary (report ~jobs:4 ~steal:false))

let test_mc_steal_parity_dv () = check_mc_steal_parity ~name:"dv" ~depth:4

let test_mc_steal_parity_tdv () = check_mc_steal_parity ~name:"tdv" ~depth:5

let test_mc_steal_parity_tdv_safe () =
  check_mc_steal_parity ~name:"tdv-safe" ~depth:4

let steal_suite =
  [
    test_deque_model;
    Alcotest.test_case "deque concurrent exactly-once" `Quick
      test_deque_concurrent_exactly_once;
    Alcotest.test_case "run_stealing executes the whole tree" `Quick
      test_run_stealing_counts;
    Alcotest.test_case "run_stealing exception propagation" `Quick
      test_run_stealing_exception;
    Alcotest.test_case "mc dv parity across jobs and steal" `Quick
      test_mc_steal_parity_dv;
    Alcotest.test_case "mc tdv parity across jobs and steal" `Quick
      test_mc_steal_parity_tdv;
    Alcotest.test_case "mc tdv-safe parity across jobs and steal" `Quick
      test_mc_steal_parity_tdv_safe;
  ]

let suite =
  [
    Alcotest.test_case "pool map ordering" `Quick test_map_ordering;
    Alcotest.test_case "pool exception propagation" `Quick test_exception_propagation;
    Alcotest.test_case "no nested pools" `Quick test_no_nested_pools;
    Alcotest.test_case "study identical across jobs" `Quick test_study_jobs_identical;
    Alcotest.test_case "replicate identical across jobs" `Quick
      test_replicate_jobs_identical;
    Alcotest.test_case "mc safe verdict identical across jobs" `Quick
      test_mc_safe_jobs_identical;
    Alcotest.test_case "mc violation verdict identical across jobs" `Quick
      test_mc_violation_jobs_identical;
  ]
