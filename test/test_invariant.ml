(* One spec, three checkers — differentially.

   lib/invariant/spec.ml is the single executable statement of the
   paper's safety contract; the chaos oracle, the model checker and the
   live audit's log replay are adapters over it.  This suite replays the
   recorded counterexample corpus (the shrunk two-site TDV trace, the
   mid-commit brain split, and the model checker's own §3
   counterexample) through all three evaluation paths and demands
   identical verdicts:

   - the chaos path: {!Harness.run}, the spec fed online from the
     cluster's commit-witness hook and client outcomes, final fork scan;
   - the checker path: a step-at-a-time session with the spec evaluated
     after every transition, exactly as the explorer does;
   - the audit path: {!Spec.replay} over a recorded event log
     (commit / intent / outcome events plus final stores), exactly as
     the live service's crash audit replays per-node operation logs.

   Before the spec extraction these were three in-place implementations
   that could drift; now divergence on any corpus trace fails here. *)

module Spec = Dynvote_invariant.Spec
module Harness = Dynvote_chaos.Harness
module Oracle = Dynvote_chaos.Oracle
module Schedule = Dynvote_chaos.Schedule
module Fault_plan = Dynvote_chaos.Fault_plan
module Checker = Dynvote_mc.Checker
module Cluster = Dynvote_msgsim.Cluster
module Node = Dynvote_msgsim.Node

let sorted vs = List.sort compare vs

let check_verdicts name expected actual =
  if sorted expected <> sorted actual then
    Alcotest.failf "%s: verdicts diverge: %a vs %a" name
      Fmt.(Dump.list Oracle.pp_violation)
      expected
      Fmt.(Dump.list Oracle.pp_violation)
      actual

(* The audit path: drive the schedule through a session while recording
   the event log the live audit would have recovered — commit events
   from the cluster's witness hook (chained through to the session's
   own oracle so the online evaluation is undisturbed), write/read
   outcome events from the harness op log, intents for writes that
   aborted — then replay the record through the bare spec. *)
let replay_recorded config steps =
  let session = Harness.make_session config in
  let cluster = Harness.cluster session in
  let oracle = Harness.oracle session in
  let events = ref [] in
  let add ev = events := ev :: !events in
  Cluster.set_commit_witness cluster (fun site replica ->
      add (Spec.Replay_commit { site; replica });
      Spec.witness oracle site replica);
  let logged = ref 0 in
  let writes = ref 0 in
  List.iter
    (fun step ->
      let before = (Harness.session_result session).Harness.aborted in
      Harness.apply_step session step;
      let result = Harness.session_result session in
      let aborted = result.Harness.aborted > before in
      List.iteri
        (fun i (st, granted, content) ->
          if i >= !logged then begin
            incr logged;
            match st with
            | Schedule.Write _ | Schedule.Crash_coordinator _ ->
                incr writes;
                let content = Printf.sprintf "w%d" !writes in
                if aborted then add (Spec.Replay_intent { content })
                else add (Spec.Replay_write { granted; content })
            | Schedule.Read at -> add (Spec.Replay_read { at; granted; content })
            | _ -> ()
          end)
        result.Harness.op_log)
    steps;
  let final =
    Site_set.fold
      (fun site acc ->
        let node = Cluster.node cluster site in
        (site, Node.data_version node, Node.content node) :: acc)
      (Cluster.universe cluster) []
  in
  let spec =
    Spec.replay ~initial_content:config.Harness.initial_content ~final
      (List.rev !events)
  in
  Spec.violations spec

(* The checker path: the explorer's per-state evaluation — apply a
   step, evaluate the spec against the cluster, repeat. *)
let session_stepwise config steps =
  let session = Harness.make_session config in
  let cluster = Harness.cluster session in
  let oracle = Harness.oracle session in
  Oracle.check_step oracle cluster;
  List.iter
    (fun step ->
      Harness.apply_step session step;
      Oracle.check_step oracle cluster)
    steps;
  Oracle.violations oracle

let run_chaos config steps =
  let r, _ = Harness.run config { Schedule.steps; faults = Fault_plan.silent } in
  r.Harness.violations

let three_ways name config steps =
  let chaos = run_chaos config steps in
  let stepwise = session_stepwise config steps in
  let audit = replay_recorded config steps in
  check_verdicts (name ^ ": chaos vs stepwise") chaos stepwise;
  check_verdicts (name ^ ": chaos vs audit replay") chaos audit;
  chaos

(* --- The corpus --- *)

let two_sites flavor =
  {
    (Harness.default_config ~flavor ()) with
    Harness.universe = Site_set.of_list [ 0; 1 ];
    segment_of = (fun _ -> 0);
  }

(* The shrunk tdv killer from the chaos suite:
   [crash 1; write@0; crash 0; restart 1; write@1]. *)
let minimal_trace =
  List.map (Schedule.step_of_int ~n_sites:2) [ 13; 0; 12; 17; 1 ]

let test_minimal_trace () =
  let violations = three_ways "tdv" (two_sites Decision.tdv_flavor) minimal_trace in
  Alcotest.(check bool) "tdv: the corpus trace still violates" true
    (List.exists (function Spec.Generation_conflict _ -> true | _ -> false)
       violations);
  List.iter
    (fun (name, flavor) ->
      let violations = three_ways name (two_sites flavor) minimal_trace in
      Alcotest.(check int) (name ^ ": clean on all three paths") 0
        (List.length violations))
    [
      ("dv", Decision.dv_flavor);
      ("ldv", Decision.ldv_flavor);
      ("tdv-safe", Decision.tdv_safe_flavor);
    ]

(* The mid-commit brain split (the atomic-update requirement): violating
   with commits torn mid-wave, clean under the paper's model. *)
let mid_commit_steps crash_site =
  Schedule.
    [ Partition 0b00111; Crash_coordinator 0; Heal; Crash crash_site; Write 3 ]

let test_mid_commit () =
  let unsafe =
    {
      (Harness.default_config ()) with
      Harness.crash_point = `Mid_commit;
      expose_commits = true;
    }
  in
  List.iter
    (fun crash_site ->
      let steps = mid_commit_steps crash_site in
      let violations =
        three_ways (Printf.sprintf "mid-commit %d" crash_site) unsafe steps
      in
      Alcotest.(check bool) "generation committed twice on all three paths" true
        (List.exists (function Spec.Generation_conflict _ -> true | _ -> false)
           violations);
      let clean =
        three_ways
          (Printf.sprintf "after-decide %d" crash_site)
          (Harness.default_config ()) steps
      in
      Alcotest.(check int) "clean under the paper's model on all three paths" 0
        (List.length clean))
    [ 1; 2 ]

(* The model checker's own §3 counterexample: whatever minimum-length
   schedule the search finds must carry identical verdicts through all
   three paths (the checker already cross-validates against {!run};
   this adds the audit-replay path). *)
let test_mc_counterexample () =
  let p =
    match Harness.policy_of_string "tdv" with
    | Some p -> p
    | None -> Alcotest.fail "no tdv policy"
  in
  let config = Checker.paper_config ~flavor:p.Harness.flavor () in
  let report = Checker.check ~policy:p ~depth:5 config in
  match report.Checker.verdict with
  | Checker.Counterexample { schedule; violations; replay_matches; _ } ->
      Alcotest.(check bool) "checker replay matches" true replay_matches;
      let steps = schedule.Schedule.steps in
      let chaos = three_ways "mc counterexample" config steps in
      check_verdicts "mc counterexample: explorer vs chaos" violations chaos
  | _ -> Alcotest.fail "tdv counterexample not found at depth 5"

let suite =
  [
    Alcotest.test_case "minimal tdv trace: three checkers agree" `Quick
      test_minimal_trace;
    Alcotest.test_case "mid-commit split: three checkers agree" `Quick
      test_mid_commit;
    Alcotest.test_case "mc counterexample: three checkers agree" `Quick
      test_mc_counterexample;
  ]
