(* Analytic models: linear algebra, CTMC solver, closed forms, and the
   exact Markov model of dynamic voting — including cross-validation
   against the discrete-event simulator. *)

open Helpers
module Matrix = Dynvote_analytic.Matrix
module Ctmc = Dynvote_analytic.Ctmc
module Kofn = Dynvote_analytic.Kofn
module Voting_model = Dynvote_analytic.Voting_model
module Site_spec = Dynvote_failures.Site_spec
module Study = Dynvote_sim.Study
module Config = Dynvote_sim.Config

(* --- Matrix --- *)

let test_matrix_solve () =
  (* 2x + y = 5; x - y = 1  =>  x = 2, y = 1. *)
  let a = Matrix.of_rows [ [| 2.0; 1.0 |]; [| 1.0; -1.0 |] ] in
  let x = Matrix.solve a [| 5.0; 1.0 |] in
  check_float_tol 1e-12 "x" 2.0 x.(0);
  check_float_tol 1e-12 "y" 1.0 x.(1)

let test_matrix_solve_needs_pivoting () =
  (* Zero on the diagonal forces a row swap. *)
  let a = Matrix.of_rows [ [| 0.0; 1.0 |]; [| 1.0; 0.0 |] ] in
  let x = Matrix.solve a [| 3.0; 7.0 |] in
  check_float_tol 1e-12 "x" 7.0 x.(0);
  check_float_tol 1e-12 "y" 3.0 x.(1)

let test_matrix_singular () =
  let a = Matrix.of_rows [ [| 1.0; 2.0 |]; [| 2.0; 4.0 |] ] in
  Alcotest.check_raises "singular" Matrix.Singular (fun () ->
      ignore (Matrix.solve a [| 1.0; 2.0 |]))

let test_matrix_ops () =
  let a = Matrix.of_rows [ [| 1.0; 2.0 |]; [| 3.0; 4.0 |] ] in
  let b = Matrix.multiply a (Matrix.identity 2) in
  check_float "identity multiply" 3.0 (Matrix.get b 1 0);
  let t = Matrix.transpose a in
  check_float "transpose" 2.0 (Matrix.get t 1 0);
  let v = Matrix.apply a [| 1.0; 1.0 |] in
  check_float "apply row 0" 3.0 v.(0);
  check_float "apply row 1" 7.0 v.(1)

let test_matrix_random_roundtrip () =
  (* Solve A x = b for random well-conditioned A; verify A x = b. *)
  let rng = Dynvote_prng.Rng.create ~seed:21L () in
  for _ = 1 to 20 do
    let n = 1 + Dynvote_prng.Rng.int rng 8 in
    let a = Matrix.create ~rows:n ~cols:n in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        Matrix.set a i j (Dynvote_prng.Rng.uniform rng ~lo:(-1.0) ~hi:1.0)
      done;
      (* Diagonal dominance keeps it non-singular. *)
      Matrix.add_to a i i (float_of_int n *. 2.0)
    done;
    let b = Array.init n (fun _ -> Dynvote_prng.Rng.uniform rng ~lo:(-5.0) ~hi:5.0) in
    let x = Matrix.solve a b in
    let back = Matrix.apply a x in
    Array.iteri
      (fun i bi ->
        if Float.abs (back.(i) -. bi) > 1e-8 then
          Alcotest.failf "residual %g at row %d" (back.(i) -. bi) i)
      b
  done

(* --- CTMC --- *)

let test_ctmc_two_state () =
  (* Up/down machine: fail rate l, repair rate m; availability m/(l+m). *)
  let l = 0.3 and m = 1.7 in
  let chain =
    Ctmc.build ~initial:`Up
      ~transitions:(function `Up -> [ (l, `Down) ] | `Down -> [ (m, `Up) ])
      ()
  in
  Alcotest.(check int) "two states" 2 (Ctmc.n_states chain);
  check_float_tol 1e-12 "availability" (m /. (l +. m)) (Ctmc.probability chain `Up);
  check_float_tol 1e-12 "mass sums to one" 1.0 (Ctmc.mass chain (fun _ -> true))

let test_ctmc_birth_death () =
  (* M/M/1/3 queue: arrivals 1.0, service 2.0, capacity 3.
     pi_k = (1/2)^k * pi_0. *)
  let chain =
    Ctmc.build ~initial:0
      ~transitions:(fun k ->
        (if k < 3 then [ (1.0, k + 1) ] else []) @ if k > 0 then [ (2.0, k - 1) ] else [])
      ()
  in
  let pi0 = 1.0 /. (1.0 +. 0.5 +. 0.25 +. 0.125) in
  check_float_tol 1e-12 "pi_0" pi0 (Ctmc.probability chain 0);
  check_float_tol 1e-12 "pi_3" (pi0 *. 0.125) (Ctmc.probability chain 3)

let test_ctmc_validation () =
  Alcotest.check_raises "negative rate" (Invalid_argument "Ctmc.build: negative rate")
    (fun () ->
      ignore (Ctmc.build ~initial:0 ~transitions:(fun _ -> [ (-1.0, 1) ]) ()))

let test_ctmc_hitting_time () =
  (* Two-state machine: expected time from Up to Down is 1/l. *)
  let l = 0.25 and m = 3.0 in
  let transitions = function `Up -> [ (l, `Down) ] | `Down -> [ (m, `Up) ] in
  check_float_tol 1e-9 "up -> down" (1.0 /. l)
    (Ctmc.expected_hitting_time ~initial:`Up ~transitions ~target:(fun s -> s = `Down) ());
  check_float "already there" 0.0
    (Ctmc.expected_hitting_time ~initial:`Down ~transitions ~target:(fun s -> s = `Down) ())

let test_ctmc_hitting_time_birth_death () =
  (* Pure birth chain 0 -> 1 -> 2 with rate 2: expected time to 2 is 1. *)
  let transitions k = if k < 2 then [ (2.0, k + 1) ] else [] in
  check_float_tol 1e-9 "two steps of mean 1/2" 1.0
    (Ctmc.expected_hitting_time ~initial:0 ~transitions ~target:(fun k -> k = 2) ());
  (* With a backward edge the time lengthens. *)
  let transitions k =
    (if k < 2 then [ (2.0, k + 1) ] else []) @ if k = 1 then [ (2.0, 0) ] else []
  in
  (* From 1: rate 4 total, half restart: h1 = 1/4 + (1/2) h0; h0 = 1/2 + h1
     => h0 = 1/2 + 1/4 + h0/2 => h0 = 3/2. *)
  check_float_tol 1e-9 "with regression" 1.5
    (Ctmc.expected_hitting_time ~initial:0 ~transitions ~target:(fun k -> k = 2) ())

let test_survival_single_copy () =
  (* One copy: R(t) = exp(-lambda t), independent of the repair rate. *)
  let survival t =
    Voting_model.survival ~flavor:Decision.ldv_flavor ~fail_rate:[| 0.1 |]
      ~repair_rate:[| 2.0 |] ~ordering:(Ordering.default 1) ~t ()
  in
  check_float_tol 1e-9 "R(0)" 1.0 (survival 0.0);
  check_float_tol 1e-8 "R(5)" (exp (-0.5)) (survival 5.0);
  check_float_tol 1e-8 "R(30)" (exp (-3.0)) (survival 30.0);
  (* Large horizons must not underflow to garbage. *)
  check_float_tol 1e-9 "R(400) ~ e^-40" (exp (-40.0)) (survival 400.0)

let test_survival_monotone_and_ordered () =
  let fail_rate = [| 0.1; 0.1; 0.1 |] and repair_rate = [| 1.0; 1.0; 1.0 |] in
  let ordering = Ordering.default 3 in
  let r flavor t =
    Voting_model.survival ~flavor ~fail_rate ~repair_rate ~ordering ~t ()
  in
  (* Decreasing in t. *)
  let prev = ref 1.0 in
  List.iter
    (fun t ->
      let v = r Decision.ldv_flavor t in
      if v > !prev +. 1e-12 then Alcotest.failf "not monotone at t=%g" t;
      prev := v)
    [ 1.0; 5.0; 20.0; 60.0; 120.0 ];
  (* TDV survives longer than LDV, LDV longer than DV. *)
  Alcotest.(check bool) "TDV > LDV at 60d" true
    (r Decision.tdv_flavor 60.0 > r Decision.ldv_flavor 60.0);
  Alcotest.(check bool) "LDV > DV at 60d" true
    (r Decision.ldv_flavor 60.0 > r Decision.dv_flavor 60.0)

let test_survival_consistent_with_mttf () =
  (* Integral of R(t) dt = MTTF; check with a coarse trapezoid. *)
  let fail_rate = [| 0.2; 0.2 |] and repair_rate = [| 2.0; 2.0 |] in
  let ordering = Ordering.default 2 in
  let flavor = Decision.ldv_flavor in
  let r t = Voting_model.survival ~flavor ~fail_rate ~repair_rate ~ordering ~t () in
  let mttf =
    Voting_model.mean_time_to_unavailability ~flavor ~fail_rate ~repair_rate ~ordering ()
  in
  let dt = 0.25 in
  let integral = ref 0.0 in
  let t = ref 0.0 in
  while r !t > 1e-6 && !t < 1000.0 do
    integral := !integral +. (dt *. ((r !t +. r (!t +. dt)) /. 2.0));
    t := !t +. dt
  done;
  Alcotest.(check bool) "integral of R ~ MTTF" true (close_rel ~rel:0.02 mttf !integral)

let test_period_statistics_single_copy () =
  let p =
    Voting_model.period_statistics ~flavor:Decision.ldv_flavor ~fail_rate:[| 0.1 |]
      ~repair_rate:[| 0.5 |] ~ordering:(Ordering.default 1) ()
  in
  check_float_tol 1e-9 "availability" (0.5 /. 0.6) p.Voting_model.availability;
  check_float_tol 1e-9 "mean up = MTTF" 10.0 p.Voting_model.mean_up_days;
  check_float_tol 1e-9 "mean down = MTTR" 2.0 p.Voting_model.mean_down_days;
  (* Failure frequency = availability * fail rate. *)
  check_float_tol 1e-9 "frequency" (0.5 /. 0.6 *. 0.1) p.Voting_model.failures_per_day

let test_period_statistics_tdv_paper () =
  (* Paper TDV on one segment: down only when all are down; the
     unavailable period ends at the first repair: mean down = 1/(n mu). *)
  let n = 3 in
  let l = 0.2 and m = 1.0 in
  let p =
    Voting_model.period_statistics ~flavor:Decision.tdv_flavor
      ~fail_rate:(Array.make n l) ~repair_rate:(Array.make n m)
      ~ordering:(Ordering.default n) ()
  in
  check_float_tol 1e-9 "mean down = 1/(3 mu)" (1.0 /. 3.0) p.Voting_model.mean_down_days

let test_mean_time_to_unavailability_ordering () =
  let fail_rate = [| 0.1; 0.1; 0.1 |] and repair_rate = [| 1.0; 1.0; 1.0 |] in
  let ordering = Ordering.default 3 in
  let mttf flavor =
    Voting_model.mean_time_to_unavailability ~flavor ~fail_rate ~repair_rate ~ordering ()
  in
  let dv = mttf Decision.dv_flavor
  and ldv = mttf Decision.ldv_flavor
  and tdv = mttf Decision.tdv_flavor in
  Alcotest.(check bool) "DV fails first" true (dv < ldv);
  Alcotest.(check bool) "TDV lasts longest" true (tdv > ldv);
  (* From all-up, the first unavailability of paper and safe TDV coincide
     (the safe guard only matters after restarts). *)
  check_float_tol 1e-6 "TDV variants agree from a clean start" tdv
    (mttf Decision.tdv_safe_flavor)

(* --- k-of-n --- *)

let test_up_count_distribution () =
  let dist = Kofn.up_count_distribution [| 0.5; 0.5 |] in
  Alcotest.(check (array (float 1e-12))) "fair coins" [| 0.25; 0.5; 0.25 |] dist;
  let dist = Kofn.up_count_distribution [| 1.0; 0.0; 1.0 |] in
  Alcotest.(check (array (float 1e-12))) "deterministic" [| 0.0; 0.0; 1.0; 0.0 |] dist

let test_mcv_closed_form () =
  (* Three identical sites with availability a: MCV = a^3 + 3 a^2 (1-a). *)
  let a = 0.9 in
  let expected = (a ** 3.0) +. (3.0 *. a *. a *. (1.0 -. a)) in
  check_float_tol 1e-12 "binomial majority" expected (Kofn.mcv_availability [| a; a; a |])

let test_mcv_lexicographic_form () =
  (* Four sites: strict majority (>=3) plus exactly-half pairs containing
     site 0. *)
  let ps = [| 0.9; 0.8; 0.7; 0.6 |] in
  let strict = Kofn.at_least ~probabilities:ps ~quorum:3 in
  (* Pairs with site 0: {0,1}, {0,2}, {0,3}. *)
  let q = Array.map (fun p -> 1.0 -. p) ps in
  let pair i = ps.(0) *. ps.(i) *. Array.fold_left ( *. ) 1.0
    (Array.mapi (fun j qj -> if j = 0 || j = i then 1.0 else qj) q)
  in
  let expected = strict +. pair 1 +. pair 2 +. pair 3 in
  check_float_tol 1e-12 "lexicographic MCV" expected
    (Kofn.mcv_lexicographic_availability ps ~ordering:(Ordering.default 4))

let test_predicate_matches_threshold () =
  let ps = [| 0.95; 0.6; 0.8; 0.5; 0.7 |] in
  check_float_tol 1e-12 "predicate = threshold"
    (Kofn.at_least ~probabilities:ps ~quorum:3)
    (Kofn.predicate_availability ps (fun up -> Site_set.cardinal up >= 3))

(* --- Voting model vs closed forms --- *)

let ordering3 = Ordering.default 3

let test_voting_model_mcv_like () =
  (* A block that never changes is not expressible here, but with a single
     site the DV model reduces to the two-state machine. *)
  let u =
    Voting_model.unavailability ~flavor:Decision.ldv_flavor ~fail_rate:[| 0.1 |]
      ~repair_rate:[| 0.9 |] ~ordering:(Ordering.default 1) ()
  in
  check_float_tol 1e-12 "single copy" 0.1 u

let test_voting_model_tdv_single_segment () =
  (* TDV on one segment behaves like available copy: the file is down only
     when no member of the current block is up.  P(all sites down) is a
     strict lower bound; the gap above it is the straggler effect (a
     repaired non-member cannot resurrect the file by itself). *)
  let l = 0.2 and m = 2.0 in
  let u flavor =
    Voting_model.unavailability ~flavor ~fail_rate:[| l; l; l |]
      ~repair_rate:[| m; m; m |] ~ordering:ordering3 ()
  in
  let down = l /. (l +. m) in
  let all_down = down ** 3.0 in
  (* Paper-literal TDV: any live site resurrects the file, so its
     unavailability is exactly P(all down). *)
  check_float_tol 1e-9 "paper TDV = P(all down)" all_down (u Decision.tdv_flavor);
  (* The safe variant pays the straggler penalty and the rival-lineage
     guard: strictly above P(all down), and no longer comparable to LDV
     (the guard denies some groups LDV would grant, the claims grant some
     groups LDV would deny). *)
  let safe = u Decision.tdv_safe_flavor in
  Alcotest.(check bool) "safe TDV above P(all down)" true (safe > all_down);
  Alcotest.(check bool) "safe TDV above paper TDV" true
    (safe > u Decision.tdv_flavor);
  Alcotest.(check bool) "safe TDV well below a single copy" true
    (safe < l /. (l +. m))

let test_voting_model_flavors_ordered () =
  let fail_rate = [| 0.1; 0.2; 0.15 |] and repair_rate = [| 1.0; 0.8; 1.2 |] in
  let u flavor =
    Voting_model.unavailability ~flavor ~fail_rate ~repair_rate ~ordering:ordering3 ()
  in
  let dv = u Decision.dv_flavor
  and ldv = u Decision.ldv_flavor
  and tdv = u Decision.tdv_flavor
  and tdv_safe = u Decision.tdv_safe_flavor in
  Alcotest.(check bool) "LDV <= DV" true (ldv <= dv +. 1e-12);
  Alcotest.(check bool) "TDV <= LDV" true (tdv <= ldv +. 1e-12);
  Alcotest.(check bool) "TDV <= safe TDV (paper variant grants more)" true
    (tdv <= tdv_safe +. 1e-12);
  Alcotest.(check bool) "all positive" true
    (dv > 0.0 && ldv > 0.0 && tdv > 0.0 && tdv_safe > 0.0)

let test_voting_model_optimistic_rate_limits () =
  (* As the access rate grows, the optimistic model approaches the
     instantaneous one. *)
  let fail_rate = [| 0.1; 0.12; 0.09 |] and repair_rate = [| 1.5; 1.1; 1.3 |] in
  let inst =
    Voting_model.unavailability ~flavor:Decision.ldv_flavor ~fail_rate ~repair_rate
      ~ordering:ordering3 ()
  in
  let opt rate =
    Voting_model.unavailability ~flavor:Decision.ldv_flavor ~access_rate:rate ~fail_rate
      ~repair_rate ~ordering:ordering3 ()
  in
  Alcotest.(check bool) "rate 1000 ~ instantaneous" true
    (close_rel ~rel:0.02 inst (opt 1000.0));
  (* With rare accesses the quorum decorrelates from the network state;
     the unavailability must differ measurably from the instantaneous
     value and stay a proper probability. *)
  let slow = opt 0.001 in
  Alcotest.(check bool) "rare accesses change the value" true
    (not (close_rel ~rel:0.001 inst slow));
  Alcotest.(check bool) "still a probability" true (slow > 0.0 && slow < 1.0)

let test_voting_model_validation () =
  Alcotest.check_raises "rates positive"
    (Invalid_argument "Voting_model: rates must be positive") (fun () ->
      ignore
        (Voting_model.unavailability ~flavor:Decision.dv_flavor ~fail_rate:[| 0.0 |]
           ~repair_rate:[| 1.0 |] ~ordering:(Ordering.default 1) ()))

(* --- Simulator cross-validation (the headline check) --- *)

(* Identical sites, exponential repair, one segment: the simulator's DV /
   LDV / TDV unavailabilities must match the exact Markov values within a
   few percent. *)
let test_simulator_matches_ctmc () =
  let n = 3 in
  let mttf = 10.0 and mttr = 1.0 in
  let specs =
    Site_spec.uniform ~n ~mttf_days:mttf ~repair_hours:(mttr *. 24.0)
  in
  let topology = Dynvote_net.Topology.single_segment n in
  let configs =
    [ Dynvote_sim.Config.create ~label:"X" ~copies:(Site_set.universe n) () ]
  in
  let parameters =
    { Study.default_parameters with horizon = 300_360.0; batches = 10; seed = 17 }
  in
  let results =
    Study.run ~parameters ~configs ~specs ~topology
      ~kinds:[ Policy.Dv; Policy.Ldv; Policy.Tdv; Policy.Mcv ] ()
  in
  let fail_rate = Array.make n (1.0 /. mttf) in
  let repair_rate = Array.make n (1.0 /. mttr) in
  let expect flavor =
    Voting_model.unavailability ~flavor ~fail_rate ~repair_rate
      ~ordering:(Ordering.default n) ()
  in
  let check kind flavor =
    let r = List.find (fun r -> r.Study.kind = kind) results in
    let expected = expect flavor in
    if not (close_rel ~rel:0.08 expected r.Study.unavailability) then
      Alcotest.failf "%s: simulated %.6f vs exact %.6f" (Policy.kind_name kind)
        r.Study.unavailability expected
  in
  check Policy.Dv Decision.dv_flavor;
  check Policy.Ldv Decision.ldv_flavor;
  check Policy.Tdv Decision.tdv_flavor;
  (* The safe TDV variant, exercised through the flavor override and the
     driver interface. *)
  let safe_driver =
    Driver.of_policy
      (Policy.create ~flavor:Decision.tdv_safe_flavor Policy.Tdv
         ~universe:(Site_set.universe n) ~n_sites:n
         ~segment_of:(Dynvote_net.Topology.segment_of topology)
         ~ordering:(Ordering.default n))
  in
  (match
     Study.run_drivers ~parameters ~specs ~topology ~drivers:[ ((), safe_driver) ] ()
   with
  | [ ((), s) ] ->
      let expected = expect Decision.tdv_safe_flavor in
      if not (close_rel ~rel:0.08 expected s.Study.unavailability) then
        Alcotest.failf "safe TDV: simulated %.6f vs exact %.6f" s.Study.unavailability
          expected
  | _ -> Alcotest.fail "unexpected driver result shape");
  (* MCV against the lexicographic closed form. *)
  let avail = Voting_model.site_availability ~fail_rate ~repair_rate in
  let expected = 1.0 -. Kofn.mcv_lexicographic_availability avail ~ordering:(Ordering.default n) in
  let r = List.find (fun r -> r.Study.kind = Policy.Mcv) results in
  if not (close_rel ~rel:0.08 expected r.Study.unavailability) then
    Alcotest.failf "MCV: simulated %.6f vs exact %.6f" r.Study.unavailability expected

let suite =
  [
    Alcotest.test_case "matrix solve" `Quick test_matrix_solve;
    Alcotest.test_case "matrix pivoting" `Quick test_matrix_solve_needs_pivoting;
    Alcotest.test_case "matrix singular" `Quick test_matrix_singular;
    Alcotest.test_case "matrix operations" `Quick test_matrix_ops;
    Alcotest.test_case "matrix random round-trip" `Quick test_matrix_random_roundtrip;
    Alcotest.test_case "ctmc two-state" `Quick test_ctmc_two_state;
    Alcotest.test_case "ctmc birth-death" `Quick test_ctmc_birth_death;
    Alcotest.test_case "ctmc validation" `Quick test_ctmc_validation;
    Alcotest.test_case "ctmc hitting time" `Quick test_ctmc_hitting_time;
    Alcotest.test_case "ctmc hitting time (birth-death)" `Quick
      test_ctmc_hitting_time_birth_death;
    Alcotest.test_case "survival single copy" `Quick test_survival_single_copy;
    Alcotest.test_case "survival monotone/ordered" `Quick test_survival_monotone_and_ordered;
    Alcotest.test_case "survival integral = MTTF" `Slow test_survival_consistent_with_mttf;
    Alcotest.test_case "period statistics (single copy)" `Quick
      test_period_statistics_single_copy;
    Alcotest.test_case "period statistics (paper TDV)" `Quick test_period_statistics_tdv_paper;
    Alcotest.test_case "mean time to unavailability ordering" `Quick
      test_mean_time_to_unavailability_ordering;
    Alcotest.test_case "up-count distribution" `Quick test_up_count_distribution;
    Alcotest.test_case "MCV closed form" `Quick test_mcv_closed_form;
    Alcotest.test_case "lexicographic MCV closed form" `Quick test_mcv_lexicographic_form;
    Alcotest.test_case "predicate = threshold" `Quick test_predicate_matches_threshold;
    Alcotest.test_case "voting model: single copy" `Quick test_voting_model_mcv_like;
    Alcotest.test_case "voting model: TDV = all-down" `Quick test_voting_model_tdv_single_segment;
    Alcotest.test_case "voting model: flavor ordering" `Quick test_voting_model_flavors_ordered;
    Alcotest.test_case "voting model: access-rate limits" `Quick
      test_voting_model_optimistic_rate_limits;
    Alcotest.test_case "voting model validation" `Quick test_voting_model_validation;
    Alcotest.test_case "simulator matches exact CTMC" `Slow test_simulator_matches_ctmc;
  ]
