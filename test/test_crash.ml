(* Storage fault injection and crash recovery: the fault-injecting
   filesystem's durability model (lying fsyncs, lost renames, short
   writes, seeded crash truncation), oplog scan forensics (torn tails
   vs. mid-log corruption), degraded-mode fencing, exactly-once client
   retries, the slow-loris wire guard, and a slice of the crash-point
   recovery matrix. *)

module Wire = Dynvote_live.Wire
module Persist = Dynvote_live.Persist
module Live = Dynvote_live.Cluster
module Node = Dynvote_live.Node
module Crash_matrix = Dynvote_live.Crash_matrix
module Faultfs = Dynvote_faultfs.Faultfs
module Shard_store = Dynvote_shard.Shard_store
module Storage = Dynvote_chaos.Fault_plan.Storage
module Oracle = Dynvote_chaos.Oracle
module Hub = Dynvote_obs.Hub
module Metrics = Dynvote_obs.Metrics

let ss = Site_set.of_list

(* --- scratch directories -------------------------------------------- *)

let scratch_counter = ref 0

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let with_scratch f =
  incr scratch_counter;
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "dynvote-crash-%d-%d" (Unix.getpid ()) !scratch_counter)
  in
  rm_rf dir;
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path content =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc content)

(* Write [content] through a vfs with full fsync discipline. *)
let vfs_write (vfs : Vfs.t) path content =
  let f = vfs.Vfs.create path in
  let buf = Bytes.of_string content in
  let len = Bytes.length buf in
  let written = ref 0 in
  while !written < len do
    written := !written + f.Vfs.write buf !written (len - !written)
  done;
  f.Vfs.fsync ();
  f.Vfs.close ()

(* --- the faultfs durability model ------------------------------------ *)

let test_faultfs_fsync_lie () =
  with_scratch (fun dir ->
      let path = Filename.concat dir "data.dvl" in
      let ff = Faultfs.create ~seed:3 () in
      let vfs = Faultfs.vfs ff in
      vfs_write vfs path "first";
      (* The rewrite's fsync lies: success reported, nothing promoted. *)
      Faultfs.arm_next ff { Storage.fault = Storage.Fsync_lie;
                           file = Storage.Data; op = Storage.Fsync; nth = 1 };
      vfs_write vfs path "second";
      Alcotest.(check string) "cache holds the lie" "second" (read_file path);
      Faultfs.simulate_crash ff;
      Alcotest.(check string) "power cut exposes the lie" "first"
        (read_file path);
      Alcotest.(check (list (pair string int))) "one injection"
        [ ("fsync-lie", 1) ] (Faultfs.injected ff))

let test_faultfs_rename_loss () =
  with_scratch (fun dir ->
      let dst = Filename.concat dir "data.dvl" in
      let tmp = dst ^ ".tmp" in
      write_file dst "old";
      let ff = Faultfs.create () in
      let vfs = Faultfs.vfs ff in
      (* The atomic-replace dance, with the directory fsync dropped. *)
      vfs_write vfs tmp "new";
      vfs.Vfs.rename ~src:tmp ~dst;
      Faultfs.arm_next ff { Storage.fault = Storage.Rename_loss;
                           file = Storage.Data; op = Storage.Fsync_dir; nth = 1 };
      vfs.Vfs.fsync_dir dir;
      Alcotest.(check string) "rename visible before the cut" "new"
        (read_file dst);
      Faultfs.simulate_crash ff;
      Alcotest.(check string) "lost rename undone: target reverts" "old"
        (read_file dst);
      Alcotest.(check string) "temp file restored" "new" (read_file tmp))

let test_faultfs_unsynced_rename_empty () =
  with_scratch (fun dir ->
      let dst = Filename.concat dir "data.dvl" in
      let tmp = dst ^ ".tmp" in
      write_file dst "old";
      let ff = Faultfs.create () in
      let vfs = Faultfs.vfs ff in
      (* Rename an un-fsynced source, then durably fsync the directory:
         the name switch survives the crash, the bytes do not. *)
      let f = vfs.Vfs.create tmp in
      let buf = Bytes.of_string "new" in
      ignore (f.Vfs.write buf 0 3 : int);
      f.Vfs.close ();
      vfs.Vfs.rename ~src:tmp ~dst;
      vfs.Vfs.fsync_dir dir;
      Faultfs.simulate_crash ff;
      Alcotest.(check string) "durably renamed unsynced source: empty target"
        "" (read_file dst))

let test_faultfs_short_write_poison () =
  with_scratch (fun dir ->
      let path = Filename.concat dir "oplog.dvl" in
      let ff = Faultfs.create () in
      let vfs = Faultfs.vfs ff in
      Faultfs.arm_next ff { Storage.fault = Storage.Short_write;
                           file = Storage.Oplog; op = Storage.Write; nth = 1 };
      let f = vfs.Vfs.append path in
      let buf = Bytes.of_string "0123456789" in
      Alcotest.(check int) "half the bytes land" 5 (f.Vfs.write buf 0 10);
      (match f.Vfs.write buf 5 5 with
      | _ -> Alcotest.fail "write on a failed device succeeded"
      | exception Vfs.Fault _ -> ());
      f.Vfs.close ();
      Alcotest.(check string) "partial bytes visible" "01234" (read_file path))

let test_faultfs_crash_truncation_deterministic () =
  (* Same seed, same operation stream: the surviving prefix of the
     unsynced append suffix must be identical across runs. *)
  let run () =
    with_scratch (fun dir ->
        let path = Filename.concat dir "oplog.dvl" in
        let ff = Faultfs.create ~seed:11 () in
        let vfs = Faultfs.vfs ff in
        let f = vfs.Vfs.append path in
        let durable = Bytes.of_string "DURABLE." in
        let w buf =
          let written = ref 0 in
          while !written < Bytes.length buf do
            written :=
              !written + f.Vfs.write buf !written (Bytes.length buf - !written)
          done
        in
        w durable;
        f.Vfs.fsync ();
        w (Bytes.of_string (String.init 64 (fun i -> Char.chr (65 + (i mod 26)))));
        f.Vfs.close ();
        Faultfs.simulate_crash ff;
        read_file path)
  in
  let a = run () and b = run () in
  Alcotest.(check string) "identical surviving prefix" a b;
  Alcotest.(check bool) "durable prefix intact" true
    (String.length a >= 8 && String.sub a 0 8 = "DURABLE.");
  Alcotest.(check bool) "unsynced suffix trimmed" true (String.length a < 72)

(* --- oplog scan forensics -------------------------------------------- *)

let sample_records =
  Persist.
    [
      Log_commit { seq = 1; op_no = 2; version = 2; partition = ss [ 0; 1 ];
                   rid = 77 };
      Log_intent { seq = 2; content = String.make 32 'i' };
      Log_outcome { seq = 3; kind = `Write; granted = true;
                    content = Some "blob"; rid = 77 };
    ]

let write_log path records =
  let log = Persist.open_log ~path () in
  List.iter (Persist.append log) records;
  Persist.close_log log

(* Byte length of the frames for a record-list prefix, measured the only
   honest way: write them and stat. *)
let log_size dir records =
  let path = Filename.concat dir "measure.dvl" in
  (try Sys.remove path with Sys_error _ -> ());
  write_log path records;
  let n = (Unix.stat path).Unix.st_size in
  Sys.remove path;
  n

let take n l = List.filteri (fun i _ -> i < n) l

let test_scan_midlog_corruption () =
  with_scratch (fun dir ->
      let path = Filename.concat dir "oplog.dvl" in
      write_log path sample_records;
      let clean = Persist.scan_log ~path () in
      Alcotest.(check int) "clean scan: all records" 3
        (List.length clean.Persist.records);
      Alcotest.(check int) "clean scan: full valid prefix"
        (String.length (read_file path)) clean.Persist.valid_prefix;
      (* Flip one payload byte of the SECOND record: a hole in the middle
         of the history, with an intact record after it. *)
      let raw = Bytes.of_string (read_file path) in
      let r1 = log_size dir (take 1 sample_records) in
      let r2 = log_size dir (take 2 sample_records) - r1 in
      let mid = r1 + (r2 / 2) in
      Bytes.set raw mid (Char.chr (Char.code (Bytes.get raw mid) lxor 0x40));
      write_file path (Bytes.to_string raw);
      let scan = Persist.scan_log ~path () in
      Alcotest.(check int) "mid-log corruption counted" 1 scan.Persist.corrupt;
      Alcotest.(check bool) "not reported as torn" false scan.Persist.torn;
      Alcotest.(check int) "intact records survive" 2
        (List.length scan.Persist.records);
      Alcotest.(check int) "valid prefix stops at the damage" r1
        scan.Persist.valid_prefix;
      let _, damaged = Persist.read_log ~path in
      Alcotest.(check bool) "read_log reports damage" true damaged)

let test_scan_torn_tail_truncate_append () =
  with_scratch (fun dir ->
      let path = Filename.concat dir "oplog.dvl" in
      write_log path sample_records;
      let full = read_file path in
      (* Tear mid-record-3, as a power cut would. *)
      write_file path (String.sub full 0 (String.length full - 4));
      let scan = Persist.scan_log ~path () in
      Alcotest.(check bool) "torn" true scan.Persist.torn;
      Alcotest.(check int) "no mid-log corruption" 0 scan.Persist.corrupt;
      Alcotest.(check int) "prefix records survive" 2
        (List.length scan.Persist.records);
      let r2_end = log_size dir (take 2 sample_records) in
      Alcotest.(check int) "valid prefix = end of last intact record" r2_end
        scan.Persist.valid_prefix;
      (* The recovery discipline: truncate to the valid prefix, then
         append — the new record must NOT read as mid-log corruption. *)
      Vfs.real.Vfs.truncate path scan.Persist.valid_prefix;
      write_log path
        [ Persist.Log_outcome { seq = 4; kind = `Read; granted = true;
                                content = None; rid = 0 } ];
      let rescan = Persist.scan_log ~path () in
      Alcotest.(check int) "appended over the cut cleanly" 0
        rescan.Persist.corrupt;
      Alcotest.(check bool) "no tear left" false rescan.Persist.torn;
      Alcotest.(check int) "three records" 3
        (List.length rescan.Persist.records))

(* --- live clusters under storage faults ------------------------------ *)

let u4 = ss [ 0; 1; 2; 3 ]

(* Durable persistence ON: these tests are about stable storage. *)
let crash_config =
  {
    Node.default_config with
    Node.gather_timeout = 0.05;
    lock_lease = 1.0;
    lock_retries = 6;
    lock_backoff = 0.02;
  }

let check_status name expected (reply : Live.reply) =
  let s = function
    | Wire.Granted -> "granted"
    | Wire.Denied -> "denied"
    | Wire.Aborted -> "aborted"
    | Wire.Degraded -> "degraded"
  in
  Alcotest.(check string)
    (Printf.sprintf "%s (info: %s)" name reply.Live.info)
    (s expected) (s reply.Live.status)

let test_degraded_fencing () =
  with_scratch (fun dir ->
      let ff = Faultfs.create ~seed:5 () in
      let vfs_of site = if site = 0 then Faultfs.vfs ff else Vfs.real in
      let hub = Hub.create () in
      let cluster =
        Live.create ~config:crash_config ~client_timeout:1.5 ~obs:hub ~vfs_of
          ~universe:u4 ~dir ()
      in
      Fun.protect ~finally:(fun () -> Live.shutdown cluster) (fun () ->
          let c = Live.client cluster in
          check_status "baseline" Wire.Granted
            (Live.put c ~at:0 ~key:"a" ~value:"1");
          (* Site 0's next data fsync fails: the self-apply of its own
             coordinated write cannot persist, so it must fence itself
             and hand the write to its peers via the client's retry. *)
          Faultfs.arm_next ff { Storage.fault = Storage.Eio;
                               file = Storage.Data; op = Storage.Fsync; nth = 1 };
          let r = Live.put ~retries:3 c ~at:0 ~key:"a" ~value:"2" in
          check_status "retried write lands" Wire.Granted r;
          Alcotest.(check bool) "retry hopped sites" true (r.Live.retries > 0);
          Alcotest.(check bool) "site 0 fenced" true
            (Live.degraded cluster 0 <> None);
          (* Fenced: writes refused loudly, reads visibly degraded. *)
          check_status "fenced write refused" Wire.Degraded
            (Live.put c ~at:0 ~key:"b" ~value:"x");
          let g = Live.get c ~at:0 ~key:"a" in
          check_status "fenced read is marked" Wire.Degraded g;
          check_status "healthy site still serves" Wire.Granted
            (Live.put c ~at:1 ~key:"b" ~value:"y");
          let m = hub.Hub.metrics in
          Alcotest.(check bool) "storage fault counted" true
            (Metrics.counter_value (Metrics.counter m "live.storage.faults") > 0);
          Alcotest.(check bool) "degraded entry counted" true
            (Metrics.counter_value (Metrics.counter m "live.degraded.entered") > 0);
          (* A reboot clears the fence (the disk "recovered"); RECOVER
             rejoins, and the site serves again. *)
          Live.restart cluster 0;
          check_status "recover after reboot" Wire.Granted
            (Live.recover_site c 0);
          let g = Live.get c ~at:0 ~key:"a" in
          check_status "read after reboot" Wire.Granted g;
          Alcotest.(check (option string)) "value converged" (Some "2")
            g.Live.value;
          let audit = Live.check cluster in
          Alcotest.(check int) "no double applies" 0 audit.Live.dup_applies;
          Alcotest.(check bool) "oracle safe" true
            (Oracle.is_safe audit.Live.oracle)))

let test_boot_fences_on_midlog_corruption () =
  with_scratch (fun dir ->
      let cluster =
        Live.create ~config:crash_config ~client_timeout:1.5 ~universe:u4 ~dir ()
      in
      Fun.protect ~finally:(fun () -> Live.shutdown cluster) (fun () ->
          let c = Live.client cluster in
          check_status "w1" Wire.Granted (Live.put c ~at:2 ~key:"a" ~value:"1");
          check_status "w2" Wire.Granted (Live.put c ~at:2 ~key:"a" ~value:"2");
          Live.kill cluster 2;
          (* Rot one byte inside the FIRST record of site 2's log —
             damage with intact records after it, which no crash can
             explain (a torn tail only ever eats the end). *)
          let path = Persist.oplog_path ~dir 2 in
          let raw = Bytes.of_string (read_file path) in
          Bytes.set raw 12 (Char.chr (Char.code (Bytes.get raw 12) lxor 0x01));
          write_file path (Bytes.to_string raw);
          Live.restart cluster 2;
          Alcotest.(check bool) "booted fenced" true
            (Live.degraded cluster 2 <> None);
          check_status "fenced site refuses writes" Wire.Degraded
            (Live.put c ~at:2 ~key:"a" ~value:"3");
          check_status "cluster keeps serving" Wire.Granted
            (Live.put c ~at:0 ~key:"a" ~value:"3");
          let audit = Live.check cluster in
          Alcotest.(check bool) "audit sees the rot" true
            (audit.Live.corrupt > 0)))

let test_exactly_once_retry () =
  with_scratch (fun dir ->
      let cluster =
        Live.create ~config:crash_config ~client_timeout:0.8 ~universe:u4 ~dir ()
      in
      Fun.protect ~finally:(fun () -> Live.shutdown cluster) (fun () ->
          let c = Live.client cluster in
          check_status "seed" Wire.Granted (Live.put c ~at:0 ~key:"a" ~value:"1");
          (* Kill coordinator 0 after its LAST commit send: the write is
             fully applied everywhere, but the client never hears.  The
             ambiguous retry re-coordinates at site 1 under the same
             request number — the dedup table must acknowledge, not
             re-apply. *)
          Live.strike_after cluster 0 4;
          let r = Live.put ~retries:3 c ~at:0 ~key:"a" ~value:"2" in
          check_status "retry acknowledges the committed write" Wire.Granted r;
          Alcotest.(check bool) "exactly one hop" true (r.Live.retries >= 1);
          Alcotest.(check bool)
            (Printf.sprintf "grant is a dedup ack (info: %s)" r.Live.info)
            true
            (String.length r.Live.info >= 9
            && String.sub r.Live.info 0 9 = "duplicate");
          Live.restart cluster 0;
          check_status "recover 0" Wire.Granted (Live.recover_site c 0);
          let g = Live.get c ~at:2 ~key:"a" in
          Alcotest.(check (option string)) "applied once, value correct"
            (Some "2") g.Live.value;
          let audit = Live.check cluster in
          Alcotest.(check int) "no double applies in the merged history" 0
            audit.Live.dup_applies;
          Alcotest.(check bool) "oracle safe" true
            (Oracle.is_safe audit.Live.oracle)))

(* --- slow-loris guard ------------------------------------------------ *)

let test_slow_loris_recv () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (* A genuine frame, dribbled one byte every 30 ms and never finished:
     a client that never completes its request must cost the server only
     its deadline, never a blocked thread. *)
  let frame =
    Wire.encode
      {
        Wire.src = Wire.first_client_id;
        dst = 0;
        payload = Wire.Client_put { req = 1; key = "key"; value = "value" };
      }
  in
  let stop = ref false in
  let dripper =
    Thread.create
      (fun () ->
        let byte = Bytes.create 1 in
        let i = ref 0 in
        while (not !stop) && !i < String.length frame - 1 do
          Bytes.set byte 0 frame.[!i];
          (try ignore (Unix.write a byte 0 1 : int)
           with Unix.Unix_error _ -> stop := true);
          incr i;
          Thread.delay 0.03
        done)
      ()
  in
  let conn = Wire.conn b in
  let t0 = Dynvote_obs.Clock.now () in
  let result = Wire.recv ~deadline:(t0 +. 0.25) conn in
  let elapsed = Dynvote_obs.Clock.now () -. t0 in
  stop := true;
  Unix.close a;
  Unix.close b;
  Thread.join dripper;
  (match result with
  | Error `Timeout -> ()
  | Error `Closed -> Alcotest.fail "reported closed, not timeout"
  | Error (`Corrupt _) -> Alcotest.fail "reported corrupt, not timeout"
  | Ok _ -> Alcotest.fail "a dribbled frame decoded");
  Alcotest.(check bool)
    (Printf.sprintf "returned by the deadline (%.2fs)" elapsed)
    true (elapsed < 2.0)

(* --- the crash matrix ------------------------------------------------ *)

let find_point name =
  match
    List.find_opt (fun p -> Crash_matrix.point_name p = name) Crash_matrix.points
  with
  | Some p -> p
  | None -> Alcotest.failf "no persist point %s" name

let check_cell (cell : Crash_matrix.cell) =
  let detail =
    match cell.Crash_matrix.c_outcome with
    | Crash_matrix.Recovered -> "recovered"
    | Crash_matrix.Fenced d -> "fenced: " ^ d
    | Crash_matrix.Unavailable d -> "UNAVAILABLE: " ^ d
    | Crash_matrix.Corrupt d -> "CORRUPT: " ^ d
  in
  Alcotest.(check bool)
    (Printf.sprintf "%s x %s healthy (%s)"
       (Crash_matrix.point_name cell.Crash_matrix.c_point)
       (Storage.fault_name cell.Crash_matrix.c_fault)
       detail)
    true
    (Crash_matrix.ok cell.Crash_matrix.c_outcome)

let test_matrix_cells () =
  with_scratch (fun dir ->
      check_cell
        (Crash_matrix.run_cell ~dir ~seed:2 (find_point "data.fsync")
           Storage.Fsync_lie);
      check_cell
        (Crash_matrix.run_cell ~dir ~seed:3 (find_point "oplog.write")
           Storage.Crash))

(* Compaction mid-flight: every atomic-replace operation of the keyed
   store's shard rewrite, struck under every fault class a bare store
   can grade.  Cheap enough to sweep un-gated — no cluster, no sockets,
   one shard log per cell. *)
let test_compaction_cells () =
  with_scratch (fun dir ->
      List.iteri
        (fun i point ->
          List.iter
            (fun fault ->
              check_cell
                (Crash_matrix.run_compaction_cell ~dir ~seed:(11 + i) point
                   fault))
            Crash_matrix.compaction_faults)
        Crash_matrix.compaction_points)

(* The exact crash window the always-fsync compaction rule closes: a
   non-durable store compacts (write-then-rename), then an unrelated
   durable replace in the same directory — the rids sidecar — fsyncs
   the directory and promotes the rename.  If the compacted bytes were
   never fsynced, the power cut leaves the shard log durably EMPTY:
   fsynced history silently gone, with no fault injected anywhere. *)
let test_compaction_promoted_rename () =
  with_scratch (fun dir ->
      let ff = Faultfs.create ~seed:7 () in
      let store, _ =
        Shard_store.open_store ~vfs:(Faultfs.vfs ff) ~durable:false ~dir ~site:0
          ~shards:1 ()
      in
      let state v =
        {
          Shard_store.op_no = v;
          version = v;
          partition = Site_set.of_list [ 0 ];
          data_version = v;
          value = Some (Printf.sprintf "v%d" v);
        }
      in
      for v = 1 to 1024 do
        Shard_store.commit store ~key:"k" ~rid:v (state v)
      done;
      Alcotest.(check int) "the 1024th commit compacted" 1
        (Shard_store.compactions store);
      Shard_store.save_rids ~fsync:true store [];
      Shard_store.close store;
      Faultfs.simulate_crash ff;
      let rescan, info = Shard_store.open_store ~dir ~site:0 ~shards:1 () in
      Alcotest.(check int) "no mid-log corruption" 0 info.Shard_store.corrupt;
      (match Shard_store.lookup rescan "k" with
      | Some st ->
          Alcotest.(check (option string))
            "compacted history survived the power cut" (Some "v1024")
            st.Shard_store.value
      | None -> Alcotest.fail "shard log durably empty: fsynced history lost");
      Shard_store.close rescan)

(* The exhaustive sweep: every persist point x every fault class.  Gated
   like the live soak — minutes of wall clock, run by CI's soak job via
   DYNVOTE_CRASH_SOAK=1. *)
let test_matrix_soak () =
  match Sys.getenv_opt "DYNVOTE_CRASH_SOAK" with
  | None | Some "" | Some "0" -> ()
  | Some _ ->
      with_scratch (fun dir ->
          let cells = Crash_matrix.run ~seed:1 ~dir () in
          Alcotest.(check int) "full cross product"
            (List.length Crash_matrix.points * List.length Storage.all_faults)
            (List.length cells);
          List.iter check_cell cells)

let suite =
  [
    Alcotest.test_case "faultfs: fsync lie reverts" `Quick test_faultfs_fsync_lie;
    Alcotest.test_case "faultfs: lost rename undone" `Quick
      test_faultfs_rename_loss;
    Alcotest.test_case "faultfs: unsynced rename leaves empty target" `Quick
      test_faultfs_unsynced_rename_empty;
    Alcotest.test_case "faultfs: short write poisons the file" `Quick
      test_faultfs_short_write_poison;
    Alcotest.test_case "faultfs: crash truncation deterministic" `Quick
      test_faultfs_crash_truncation_deterministic;
    Alcotest.test_case "oplog: mid-log corruption counted" `Quick
      test_scan_midlog_corruption;
    Alcotest.test_case "oplog: torn tail truncate-then-append" `Quick
      test_scan_torn_tail_truncate_append;
    Alcotest.test_case "degraded site fences and recovers" `Quick
      test_degraded_fencing;
    Alcotest.test_case "boot fences on mid-log corruption" `Quick
      test_boot_fences_on_midlog_corruption;
    Alcotest.test_case "exactly-once retry dedup" `Quick test_exactly_once_retry;
    Alcotest.test_case "slow-loris recv bounded by deadline" `Quick
      test_slow_loris_recv;
    Alcotest.test_case "crash matrix cells" `Quick test_matrix_cells;
    Alcotest.test_case "compaction mid-flight cells" `Quick
      test_compaction_cells;
    Alcotest.test_case "compaction rename promoted by sidecar fsync" `Quick
      test_compaction_promoted_rename;
    Alcotest.test_case "crash matrix soak (DYNVOTE_CRASH_SOAK)" `Slow
      test_matrix_soak;
  ]
