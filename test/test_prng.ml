(* PRNG: determinism, stream independence, distribution sanity. *)

module Rng = Dynvote_prng.Rng
module Splitmix64 = Dynvote_prng.Splitmix64
module Xoshiro256 = Dynvote_prng.Xoshiro256

let test_splitmix_reference () =
  (* Reference outputs for seed 1234567 (computed from the published
     splitmix64 algorithm; stable across platforms by construction). *)
  let g = Splitmix64.create 1234567L in
  let a = Splitmix64.next_int64 g in
  let b = Splitmix64.next_int64 g in
  Alcotest.(check bool) "outputs differ" true (a <> b);
  (* Determinism: same seed, same sequence. *)
  let g' = Splitmix64.create 1234567L in
  Alcotest.(check int64) "first replayed" a (Splitmix64.next_int64 g');
  Alcotest.(check int64) "second replayed" b (Splitmix64.next_int64 g')

let test_splitmix_split_independence () =
  let g = Splitmix64.create 42L in
  let child = Splitmix64.split g in
  let a = Splitmix64.next_int64 g and b = Splitmix64.next_int64 child in
  Alcotest.(check bool) "parent and child diverge" true (a <> b)

let test_xoshiro_determinism () =
  let g1 = Xoshiro256.create 99L and g2 = Xoshiro256.create 99L in
  for i = 1 to 100 do
    Alcotest.(check int64)
      (Printf.sprintf "output %d" i)
      (Xoshiro256.next_int64 g1) (Xoshiro256.next_int64 g2)
  done

let test_xoshiro_jump_disjoint () =
  let g = Xoshiro256.create 7L in
  let child = Xoshiro256.split g in
  (* After split, the parent jumped 2^128 steps: the next outputs of the
     two generators must differ (overlap would need astronomically many
     draws). *)
  let overlap = ref false in
  let parent_outputs = Array.init 50 (fun _ -> Xoshiro256.next_int64 g) in
  for _ = 1 to 50 do
    let c = Xoshiro256.next_int64 child in
    if Array.exists (Int64.equal c) parent_outputs then overlap := true
  done;
  Alcotest.(check bool) "no overlap in first 50 outputs" false !overlap

let test_float_range () =
  let g = Rng.create ~seed:5L () in
  for _ = 1 to 10_000 do
    let x = Rng.float g in
    if x < 0.0 || x >= 1.0 then Alcotest.failf "float out of range: %f" x
  done

let test_int_range_and_uniformity () =
  let g = Rng.create ~seed:6L () in
  let counts = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let v = Rng.int g 10 in
    if v < 0 || v >= 10 then Alcotest.failf "int out of range: %d" v;
    counts.(v) <- counts.(v) + 1
  done;
  (* Each bucket should hold ~10%; allow 4 sigma (~0.38%). *)
  Array.iteri
    (fun i c ->
      let p = float_of_int c /. float_of_int n in
      if Float.abs (p -. 0.1) > 0.004 then
        Alcotest.failf "bucket %d has probability %.4f" i p)
    counts

let test_int_validation () =
  let g = Rng.create () in
  Alcotest.check_raises "zero bound"
    (Invalid_argument "Xoshiro256.next_int: bound must be positive") (fun () ->
      ignore (Rng.int g 0))

let test_exponential_mean () =
  let g = Rng.create ~seed:7L () in
  let n = 200_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    let x = Rng.exponential g ~mean:3.5 in
    if x < 0.0 then Alcotest.fail "negative exponential variate";
    sum := !sum +. x
  done;
  let mean = !sum /. float_of_int n in
  (* Standard error = 3.5/sqrt(n) ~ 0.0078; allow 5 sigma. *)
  Alcotest.(check bool) "mean near 3.5" true (Float.abs (mean -. 3.5) < 0.04)

let test_shifted_exponential () =
  let g = Rng.create ~seed:8L () in
  for _ = 1 to 1000 do
    let x = Rng.shifted_exponential g ~constant:2.0 ~mean:1.0 in
    if x < 2.0 then Alcotest.failf "below the constant floor: %f" x
  done;
  (* Zero exponential part is exactly the constant. *)
  Alcotest.(check (float 0.0)) "pure constant" 4.0
    (Rng.shifted_exponential g ~constant:4.0 ~mean:0.0)

let test_bernoulli () =
  let g = Rng.create ~seed:9L () in
  let n = 100_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Rng.bernoulli g ~p:0.3 then incr hits
  done;
  let p = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "p near 0.3" true (Float.abs (p -. 0.3) < 0.01);
  Alcotest.(check bool) "p=0 never" false (Rng.bernoulli g ~p:0.0);
  Alcotest.(check bool) "p=1 always" true (Rng.bernoulli g ~p:1.0)

let test_shuffle_is_permutation () =
  let g = Rng.create ~seed:10L () in
  let arr = Array.init 20 (fun i -> i) in
  Rng.shuffle_in_place g arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 20 (fun i -> i)) sorted

let test_streams_differ () =
  let g = Rng.create ~seed:11L () in
  let streams = Rng.streams g 4 in
  let firsts = Array.map Rng.int64 streams in
  let distinct = List.sort_uniq compare (Array.to_list firsts) in
  Alcotest.(check int) "all first outputs distinct" 4 (List.length distinct)

let test_uniform_range () =
  let g = Rng.create ~seed:12L () in
  for _ = 1 to 1000 do
    let x = Rng.uniform g ~lo:(-2.0) ~hi:5.0 in
    if x < -2.0 || x >= 5.0 then Alcotest.failf "uniform out of range: %f" x
  done;
  Alcotest.check_raises "hi < lo" (Invalid_argument "Rng.uniform: hi < lo") (fun () ->
      ignore (Rng.uniform g ~lo:1.0 ~hi:0.0))

let suite =
  [
    Alcotest.test_case "splitmix64 determinism" `Quick test_splitmix_reference;
    Alcotest.test_case "splitmix64 split" `Quick test_splitmix_split_independence;
    Alcotest.test_case "xoshiro determinism" `Quick test_xoshiro_determinism;
    Alcotest.test_case "xoshiro jump disjoint" `Quick test_xoshiro_jump_disjoint;
    Alcotest.test_case "float in [0,1)" `Quick test_float_range;
    Alcotest.test_case "int uniformity" `Quick test_int_range_and_uniformity;
    Alcotest.test_case "int validation" `Quick test_int_validation;
    Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
    Alcotest.test_case "shifted exponential floor" `Quick test_shifted_exponential;
    Alcotest.test_case "bernoulli" `Quick test_bernoulli;
    Alcotest.test_case "shuffle is a permutation" `Quick test_shuffle_is_permutation;
    Alcotest.test_case "independent streams" `Quick test_streams_differ;
    Alcotest.test_case "uniform range" `Quick test_uniform_range;
  ]
