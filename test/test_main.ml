let () =
  Alcotest.run "dynvote"
    [
      ("site_set", Test_site_set.suite);
      ("ordering", Test_ordering.suite);
      ("decision", Test_decision.suite);
      ("operation", Test_operation.suite);
      ("scenario", Test_scenario.suite);
      ("policy", Test_policy.suite);
      ("policy_extra", Test_policy_extra.suite);
      ("prng", Test_prng.suite);
      ("stats", Test_stats.suite);
      ("des", Test_des.suite);
      ("net", Test_net.suite);
      ("failures", Test_failures.suite);
      ("metrics", Test_metrics.suite);
      ("study", Test_study.suite);
      ("analytic", Test_analytic.suite);
      ("msgsim", Test_msgsim.suite);
      ("differential", Test_differential.suite);
      ("store", Test_store.suite);
      ("report", Test_report.suite);
      ("timeline", Test_timeline.suite);
      ("codec", Test_codec.suite);
      ("chaos", Test_chaos.suite);
      ("mc", Test_mc.suite);
      ("invariant", Test_invariant.suite);
      ("adaptive_witness", Test_adaptive_witness.suite);
      ("obs", Test_obs.suite);
      ("live", Test_live.suite);
      ("evloop", Test_evloop.suite);
      ("serve", Test_evloop.serve_suite);
      ("crash", Test_crash.suite);
      ("shard", Test_shard.suite);
      ("exec", Test_exec.suite);
      ("steal", Test_exec.steal_suite);
      ("misc", Test_misc.suite);
    ]
