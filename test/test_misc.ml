(* Coverage for the small supporting modules: Replica, Driver, Config,
   Paper_values, the table producers. *)

open Helpers
module Config = Dynvote_sim.Config
module Paper = Dynvote_sim.Paper_values
module Table = Dynvote_sim.Table
module Study = Dynvote_sim.Study
module Site_spec = Dynvote_failures.Site_spec
module Text_table = Dynvote_report.Text_table

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* --- Replica --- *)

let test_replica_basics () =
  let universe = ss [ 0; 1; 2 ] in
  let r = Replica.initial universe in
  Alcotest.(check int) "initial o" 1 (Replica.op_no r);
  Alcotest.(check int) "initial v" 1 (Replica.version r);
  Alcotest.check set_testable "initial P" universe (Replica.partition r);
  let r' = Replica.with_commit r ~op_no:5 ~version:3 ~partition:(ss [ 0; 1 ]) in
  Alcotest.(check int) "committed o" 5 (Replica.op_no r');
  Alcotest.(check bool) "original untouched" true (Replica.op_no r = 1);
  Alcotest.(check bool) "equal reflexive" true (Replica.equal r' r');
  Alcotest.(check bool) "not equal" false (Replica.equal r r');
  Alcotest.check_raises "negative op" (Invalid_argument "Replica.make: negative operation number")
    (fun () -> ignore (Replica.make ~op_no:(-1) ~version:0 ~partition:universe));
  Alcotest.(check string) "pp" "o=5 v=3 P={0, 1}" (Fmt.str "%a" Replica.pp r');
  Alcotest.(check string) "pp names" "o=5 v=3 P={A, B}"
    (Fmt.str "%a" (Replica.pp_names [| "A"; "B"; "C" |]) r')

(* --- Driver --- *)

let test_driver_stateless () =
  let calls = ref 0 in
  let d =
    Driver.stateless ~name:"probe" (fun view ->
        incr calls;
        view.Policy.components <> [])
  in
  Alcotest.(check string) "name" "probe" d.Driver.name;
  Alcotest.(check bool) "not optimistic" false d.Driver.optimistic;
  d.Driver.on_topology_change { Policy.components = [] };
  d.Driver.on_repair { Policy.components = [] } 0;
  Alcotest.(check bool) "available delegates" true
    (d.Driver.available { Policy.components = [ ss [ 0 ] ] });
  Alcotest.(check bool) "access = availability" false
    (d.Driver.on_access { Policy.components = [] });
  Alcotest.(check int) "probe called twice" 2 !calls

(* --- Config --- *)

let test_config () =
  Alcotest.(check int) "eight configurations" 8 (List.length Config.ucsd_configurations);
  let b = Option.get (Config.find "b") in
  Alcotest.(check string) "case-insensitive lookup" "B" (Config.label b);
  Alcotest.(check (list int)) "paper site numbers" [ 1; 2; 6 ] (Config.paper_sites b);
  Alcotest.(check bool) "unknown label" true (Config.find "Z" = None);
  Alcotest.check_raises "empty copies" (Invalid_argument "Config.create: no copies")
    (fun () -> ignore (Config.create ~label:"x" ~copies:Site_set.empty ()));
  Alcotest.(check bool) "pp mentions description" true
    (contains ~needle:"partition point" (Fmt.str "%a" Config.pp b))

(* --- Paper values --- *)

let test_paper_values () =
  Alcotest.(check int) "kind columns" 6 (List.length Paper.kinds);
  Alcotest.(check (list string)) "labels" [ "A"; "B"; "C"; "D"; "E"; "F"; "G"; "H" ]
    Paper.config_labels;
  Alcotest.(check (option (float 1e-9))) "Table 2 F/DV" (Some 0.108034)
    (Paper.table2_value ~config:"F" ~kind:Policy.Dv);
  Alcotest.(check (option (float 1e-9))) "Table 3 A/MCV" (Some 0.101968)
    (Paper.table3_value ~config:"A" ~kind:Policy.Mcv);
  (* The paper's "-" cells decode as None. *)
  Alcotest.(check (option (float 0.0))) "Table 3 E/TDV dash" None
    (Paper.table3_value ~config:"E" ~kind:Policy.Tdv);
  Alcotest.(check (option (float 0.0))) "unknown config" None
    (Paper.table2_value ~config:"Z" ~kind:Policy.Mcv);
  (* Every configuration has a full row in both tables. *)
  List.iter
    (fun config ->
      List.iter
        (fun kind ->
          Alcotest.(check bool)
            (config ^ " table2 cell present")
            true
            (Paper.table2_value ~config ~kind <> None))
        Paper.kinds)
    Paper.config_labels

(* --- Table producers --- *)

let small_results =
  lazy
    (Study.run
       ~parameters:{ Study.default_parameters with horizon = 5_360.0; batches = 2 }
       ~configs:[ Option.get (Config.find "A") ]
       ())

let test_table_producers () =
  let results = Lazy.force small_results in
  let t2 = Fmt.str "%a" Text_table.pp (Table.table2 results) in
  Alcotest.(check bool) "table2 row label" true (contains ~needle:"A: 1, 2, 4" t2);
  Alcotest.(check bool) "table2 columns" true (contains ~needle:"OTDV" t2);
  let t3 = Fmt.str "%a" Text_table.pp (Table.table3 results) in
  Alcotest.(check bool) "table3 rendered" true (contains ~needle:"A: 1, 2, 4" t3);
  let cmp = Fmt.str "%a" Text_table.pp (Table.comparison Table.Unavailability results) in
  Alcotest.(check bool) "comparison includes paper value" true
    (contains ~needle:"0.002130" cmp);
  let iv = Fmt.str "%a" Text_table.pp (Table.intervals results) in
  Alcotest.(check bool) "intervals include outages column" true
    (contains ~needle:"Outages" iv);
  let t1 = Fmt.str "%a" Text_table.pp (Table.table1 Site_spec.ucsd_sites) in
  Alcotest.(check bool) "table1 names" true (contains ~needle:"beowulf" t1)

(* --- Scenario restart without recovery --- *)

let test_scenario_restart () =
  let s = Scenario.create ~names:[| "A"; "B"; "C" |] () in
  ignore (Scenario.writes s 3);
  Scenario.fail s "C";
  ignore (Scenario.writes s 2);
  (* A silent restart leaves C stale and outside the quorum... *)
  Scenario.restart s "C";
  Alcotest.check replica_testable "C still stale"
    (Replica.make ~op_no:4 ~version:4 ~partition:(ss [ 0; 1; 2 ]))
    (Scenario.state s "C");
  (* ...but the next granted operation merges it back (refresh-on-read is
     not automatic; a read commits only to S). *)
  ignore (Scenario.read s);
  Alcotest.(check bool) "file available with majority" true (Scenario.is_available s);
  Alcotest.(check bool) "log narrates" true (List.length (Scenario.log s) > 5)

let suite =
  [
    Alcotest.test_case "replica basics" `Quick test_replica_basics;
    Alcotest.test_case "stateless driver" `Quick test_driver_stateless;
    Alcotest.test_case "configurations" `Quick test_config;
    Alcotest.test_case "paper values" `Quick test_paper_values;
    Alcotest.test_case "table producers" `Quick test_table_producers;
    Alcotest.test_case "scenario restart" `Quick test_scenario_restart;
  ]
