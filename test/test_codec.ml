(* Stable-storage codec: round trips, corruption detection, atomic file
   persistence. *)

open Helpers

let sample = Replica.make ~op_no:42 ~version:17 ~partition:(ss [ 0; 2; 5; 61 ])

let test_roundtrip () =
  let encoded = Codec.encode_replica sample in
  Alcotest.(check int) "record size" Codec.encoded_size (String.length encoded);
  Alcotest.check replica_testable "round trip" sample (Codec.decode_replica encoded)

let test_corruption_detected () =
  let encoded = Bytes.of_string (Codec.encode_replica sample) in
  (* Flip one payload byte: checksum must catch it. *)
  Bytes.set encoded 10 (Char.chr (Char.code (Bytes.get encoded 10) lxor 0xFF));
  (match Codec.decode_replica (Bytes.to_string encoded) with
  | exception Codec.Corrupt _ -> ()
  | _ -> Alcotest.fail "corrupted record accepted");
  (* Wrong magic. *)
  let encoded = Bytes.of_string (Codec.encode_replica sample) in
  Bytes.set encoded 0 'X';
  (match Codec.decode_replica (Bytes.to_string encoded) with
  | exception Codec.Corrupt _ -> ()
  | _ -> Alcotest.fail "bad magic accepted");
  (* Truncated. *)
  match Codec.decode_replica "short" with
  | exception Codec.Corrupt _ -> ()
  | _ -> Alcotest.fail "truncated record accepted"

let test_file_persistence () =
  let path = Filename.temp_file "dynvote" ".state" in
  Codec.save_replica ~path sample;
  Alcotest.check replica_testable "load after save" sample (Codec.load_replica ~path ());
  (* Overwrite with a newer state; the latest wins. *)
  let newer = Replica.make ~op_no:43 ~version:18 ~partition:(ss [ 0; 2 ]) in
  Codec.save_replica ~path newer;
  Alcotest.check replica_testable "latest state" newer (Codec.load_replica ~path ());
  Sys.remove path

let prop_roundtrip =
  qcheck_case ~count:300 ~name:"encode/decode round trip"
    QCheck.(triple (int_range 0 1_000_000) (int_range 0 1_000_000)
              (list_of_size (Gen.int_range 0 10) (int_range 0 61)))
    (fun (op_no, version, sites) ->
      let replica =
        Replica.make ~op_no ~version ~partition:(Site_set.of_list sites)
      in
      Replica.equal replica (Codec.decode_replica (Codec.encode_replica replica)))

let prop_single_bit_flips_detected =
  qcheck_case ~count:200 ~name:"any payload bit flip is detected"
    QCheck.(pair (int_range 8 31) (int_range 0 7))
    (fun (byte_index, bit) ->
      let encoded = Bytes.of_string (Codec.encode_replica sample) in
      Bytes.set encoded byte_index
        (Char.chr (Char.code (Bytes.get encoded byte_index) lxor (1 lsl bit)));
      match Codec.decode_replica (Bytes.to_string encoded) with
      | exception Codec.Corrupt _ -> true
      | _ -> false)

let suite =
  [
    Alcotest.test_case "round trip" `Quick test_roundtrip;
    Alcotest.test_case "corruption detected" `Quick test_corruption_detected;
    Alcotest.test_case "file persistence" `Quick test_file_persistence;
    prop_roundtrip;
    prop_single_bit_flips_detected;
  ]
