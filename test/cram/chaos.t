The chaos harness attacks the message-level protocols with seeded fault
schedules and checks the safety oracle.  Output is bit-identical for a
fixed seed.

  $ export CLI=../../bin/dynvote_cli.exe

All policies, a short campaign.  The safe flavors must report OK; TDV as
published (and its optimistic variant) trips the oracle organically and
is annotated as expected-unsafe:

  $ $CLI chaos --seed 7 --schedules 150
  dv          150 schedules   1760 ops (1239 granted / 375 denied / 146 aborted)   21107 msgs (lost=447 flapped=6 dup=369 delayed=877 partition=7530) 46 corrupt records | safety: OK
  ldv         150 schedules   1752 ops (1284 granted / 314 denied / 154 aborted)   21051 msgs (lost=445 flapped=6 dup=369 delayed=872 partition=7482) 46 corrupt records | safety: OK
  odv         150 schedules   1752 ops (1284 granted / 314 denied / 154 aborted)   21051 msgs (lost=445 flapped=6 dup=369 delayed=872 partition=7482) 46 corrupt records | safety: OK
  tdv         150 schedules   1736 ops (1341 granted / 225 denied / 170 aborted)   20816 msgs (lost=329 flapped=4 dup=390 delayed=861 partition=6861) 50 corrupt records | safety: 1 violations (expected unsafe)
  otdv        150 schedules   1736 ops (1341 granted / 225 denied / 170 aborted)   20816 msgs (lost=329 flapped=4 dup=390 delayed=861 partition=6861) 50 corrupt records | safety: 1 violations (expected unsafe)
  tdv-safe    150 schedules   1736 ops (1329 granted / 237 denied / 170 aborted)   20806 msgs (lost=329 flapped=4 dup=390 delayed=861 partition=6861) 50 corrupt records | safety: OK
  otdv-safe   150 schedules   1736 ops (1329 granted / 237 denied / 170 aborted)   20806 msgs (lost=329 flapped=4 dup=390 delayed=861 partition=6861) 50 corrupt records | safety: OK

A single policy:

  $ $CLI chaos --seed 7 --schedules 150 --policy ldv
  ldv         150 schedules   1752 ops (1284 granted / 314 denied / 154 aborted)   21051 msgs (lost=445 flapped=6 dup=369 delayed=872 partition=7482) 46 corrupt records | safety: OK

Dropping the paper's atomic-update assumption (COMMITs exposed to faults,
coordinators killed mid-commit) breaks every policy — the harness
reproduces why the paper requires update operations to be atomic.  The
command still exits 0 because nothing *expected* to be safe failed:

  $ $CLI chaos --seed 7 --schedules 150 --policy ldv --unsafe-commits | sed 's/.*| //'
  safety: 57 violations (expected unsafe)

Unknown policies are rejected:

  $ $CLI chaos --policy paxos
  dynvote: unknown policy "paxos" (try --policy all)
  [2]
