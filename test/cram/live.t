The live service: one server thread per site behind real loopback
sockets, a scripted console for client operations and fault injection,
and a safety audit that replays the on-disk per-node operation logs
through the oracle.  The script runs serially, so everything except the
ephemeral port is deterministic.

  $ export CLI=../../bin/dynvote_cli.exe

A four-site walkthrough: the minority side of a partition is denied
(LDV: the tie-break element is unreachable), heal plus RECOVER restores
it, and a killed site restarts from its stable record.

  $ cat > script.txt <<'EOF'
  > status
  > put 0 color blue
  > get 2 color
  > partition 0,1/2,3
  > put 3 color red
  > put 0 color green
  > get 2 color
  > heal
  > recover 3
  > get 3 color
  > kill 1
  > put 0 color teal
  > restart 1
  > recover 1
  > get 1 color
  > check
  > EOF

  $ $CLI serve --sites 4 --dir state --script script.txt | sed -E 's/port [0-9]+/port PORT/'
  serving 4 sites from state (port PORT)
  > status
  up: {0, 1, 2, 3}
  > put 0 color blue
  granted
  > get 2 color
  granted "blue"
  > partition 0,1/2,3
  partitioned 0,1/2,3
  > put 3 color red
  denied (tie lost (max element 0 unreachable))
  > put 0 color green
  granted
  > get 2 color
  denied (tie lost (max element 0 unreachable))
  > heal
  healed
  > recover 3
  granted
  > get 3 color
  granted "green"
  > kill 1
  killed 1
  > put 0 color teal
  granted
  > restart 1
  restarted 1
  > recover 1
  granted
  > get 1 color
  granted "teal"
  > check
  audit: 37 log records, 24 commits, 3 reads checked
  audit: SAFE (0 violations)
  stopped

The state directory survives the cluster: a second run resumes from the
stable records (and the audit keeps accumulating across incarnations,
because the global sequence stamp resumes past the old logs).

  $ cat > script2.txt <<'EOF'
  > get 0 color
  > put 0 color plum
  > get 3 color
  > check
  > EOF

  $ $CLI serve --sites 4 --dir state --script script2.txt | sed -E 's/port [0-9]+/port PORT/'
  serving 4 sites from state (port PORT)
  > get 0 color
  granted "teal"
  > put 0 color plum
  granted
  > get 3 color
  granted "plum"
  > check
  audit: 50 log records, 33 commits, 5 reads checked
  audit: SAFE (0 violations)
  stopped

The load generator reports throughput with a batch-means confidence
interval and exact latency percentiles, then audits the run.  Numbers
are timing-dependent, so only the shape is checked:

  $ $CLI loadgen --sites 4 --clients 2 --duration 0.6 --buffered --seed 3 \
  >   | grep -E '^(reads|writes|goodput|audit)' \
  >   | sed -E 's/[0-9]+(\.[0-9]+)?/N/g; s/ +/ /g'
  reads N issued N granted N denied N aborted
  writes N issued N granted N denied N aborted
  goodput N ops/s +/- N (N% CI, N batches) over N s
  audit: N log records, N commits, N reads checked
  audit: SAFE (N violations)

The serve console answers `stats` with the metrics registry and the
recent protocol trace.  Values are timing-dependent; the counter names
are not — pick a few and check they are reported:

  $ cat > script3.txt <<'EOF'
  > put 0 k v
  > get 1 k
  > stats
  > EOF

  $ $CLI serve --sites 3 --dir state3 --script script3.txt \
  >   | grep -E '(live\.(op\.granted|lock\.rounds|commit\.waves)|net\.frames\.(sent|delivered)) ' \
  >   | sed -E 's/[0-9]+/N/g; s/ +/ /g'
  live.commit.waves N
  live.lock.rounds N
  live.op.granted N
  net.frames.delivered N
  net.frames.sent N

Unknown policies are rejected:

  $ $CLI serve --policy paxos --script /dev/null
  dynvote: unknown policy "paxos"
  [2]

The pipelined service (anchored lock rounds, gather reuse, staged
outbound frames) answers a serial console byte-for-byte like the
sequential default: pipelining changes the wire traffic, never the
replies or the audit.

  $ cat > pscript.txt <<'EOF2'
  > status
  > put 0 color blue
  > get 3 color
  > put 1 color green
  > get 2 color
  > check
  > EOF2

  $ $CLI serve --sites 4 --dir pstate --pipeline 8 --max-reuse 64 --script pscript.txt | sed -E 's/port [0-9]+/port PORT/'
  serving 4 sites from pstate (port PORT)
  > status
  up: {0, 1, 2, 3}
  > put 0 color blue
  granted
  > get 3 color
  granted "blue"
  > put 1 color green
  granted
  > get 2 color
  granted "green"
  > check
  audit: 22 log records, 16 commits, 2 reads checked
  audit: SAFE (0 violations)
  stopped
