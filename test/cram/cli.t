The CLI regenerates the paper's inputs deterministically.

  $ export CLI=../../bin/dynvote_cli.exe
  $ export DYNVOTE_JOBS=1

Table 1 is the published site characteristics:

  $ $CLI table1
  +------+---------+-------------+--------+---------------+------------------+----------------+
  | Site | Name    | MTTF (days) | HW (%) | Restart (min) | Repair const (h) | Repair exp (h) |
  +------+---------+-------------+--------+---------------+------------------+----------------+
  |    1 | csvax   |        36.5 |     10 |            20 |                0 |              2 |
  |    2 | beowulf |          10 |     10 |            15 |                4 |             24 |
  |    3 | grendel |         365 |     90 |            10 |                0 |              2 |
  |    4 | wizard  |          50 |     50 |            15 |              168 |            168 |
  |    5 | amos    |         365 |     90 |            10 |                0 |              2 |
  |    6 | gremlin |          50 |     50 |            15 |              168 |            168 |
  |    7 | rip     |          50 |     50 |            15 |              168 |            168 |
  |    8 | mangle  |          50 |     50 |            15 |              168 |            168 |
  +------+---------+-------------+--------+---------------+------------------+----------------+
  Note: sites 1, 3 and 5 are down 3 hours every 90 days for maintenance.

The Figure 8 network:

  $ $CLI topology | head -7
  alpha   ===[1:csvax]===[2:beowulf]===[3:grendel]===[4:wizard*]===[5:amos*]===
  beta    ===[6:gremlin]===
  gamma   ===[7:rip]===[8:mangle]===
          wizard* links alpha and beta
          amos* links alpha and gamma
          (* = gateway; its failure partitions the network)
  

Partition enumeration for configuration B (single partition point, site 4):

  $ $CLI partitions --config B
  Configuration B: sites 1, 2, 6 (three copies, partition point at site 4)
  
  Partition points (gateways whose lone failure splits the copies): {wizard}
  
  All partitions achievable through gateway failures:
    {gremlin} | {csvax, beowulf}
    {csvax, beowulf, gremlin}

The failure trace is deterministic for a given seed:

  $ $CLI trace --seed 1 --days 40 | head -4
      5.2124  wizard   DOWN software failure
      5.2229  wizard   UP   repair complete
     15.0992  wizard   DOWN software failure
     15.1096  wizard   UP   repair complete
