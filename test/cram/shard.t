The sharded object space: every key is an independently-voted object
behind a bounded-residency LRU over per-shard logs, and the group
quorum path locks a whole scheduler burst in one wire round.  Jobs are
pinned to 1 so nothing races the scripted console.

  $ export CLI=../../bin/dynvote_cli.exe
  $ export DYNVOTE_JOBS=1

A four-site keyed walkthrough.  Three independent objects; a partition
denies the minority side per object (its copy is below the previous
quorum's majority), healing restores it without an explicit RECOVER
(sharded sites rejoin through the next commit wave), and a killed site
restarts straight from its shard logs.

  $ cat > script.txt <<'EOF'
  > status
  > put 0 alpha 1
  > put 1 beta 2
  > put 2 gamma 3
  > get 3 alpha
  > partition 0,1,2/3
  > put 3 beta x
  > put 0 beta 2b
  > heal
  > get 3 beta
  > kill 2
  > put 0 gamma 3b
  > restart 2
  > get 2 gamma
  > check
  > EOF

  $ $CLI serve --sites 4 --shards 8 --resident 64 --dir state --script script.txt | sed -E 's/port [0-9]+/port PORT/'
  serving 4 sites from state (port PORT)
  > status
  up: {0, 1, 2, 3}
  > put 0 alpha 1
  granted
  > put 1 beta 2
  granted
  > put 2 gamma 3
  granted
  > get 3 alpha
  granted "1"
  > partition 0,1,2/3
  partitioned 0,1,2/3
  > put 3 beta x
  denied (below majority (1 of previous quorum 4))
  > put 0 beta 2b
  granted
  > heal
  healed
  > get 3 beta
  granted "2b"
  > kill 2
  killed 2
  > put 0 gamma 3b
  granted
  > restart 2
  restarted 2
  > get 2 gamma
  granted "3b"
  > check
  audit: 42 log records, 0 commits, 0 reads checked
  sharded object space: 3 keys audited, each via its own oracle
  audit: SAFE (0 violations)
  stopped

A skewed keyed workload: the generator reports the hot-set summary
(distinct keys touched, share of traffic on the hottest 1% of the key
space) and the per-key audit covers every touched object.  Numbers are
timing-dependent, so only the shape is checked:

  $ $CLI loadgen --sites 4 --shards 8 --clients 2 --duration 0.4 --keys 256 --zipf 1.2 --seed 5 \
  >   | grep -E '^(reads|writes|keys|goodput|audit|sharded)' \
  >   | sed -E 's/[0-9]+(\.[0-9]+)?/N/g; s/ +/ /g'
  reads N issued N granted N denied N aborted
  writes N issued N granted N denied N aborted
  keys N distinct touched top-N%-of-keyspace share N
  goodput N ops/s +/- N (N% CI, N batches) over N s
  audit: N log records, N commits, N reads checked
  sharded object space: N keys audited, each via its own oracle
  audit: SAFE (N violations)

Zipf skew is over the key space, so it refuses to guess how big that
space is:

  $ $CLI loadgen --zipf 1.1 --duration 0.2
  dynvote: --zipf needs an explicit --keys (the skew is over the key space; say how big it is)
  [2]

The observability snapshot carries the shard instruments: residency
and key-count gauges, materialize/evict counters, and the group-batch
histogram whose mean is the keys-per-lock-round payoff.

  $ $CLI stats --sites 3 --shards 8 --duration 0.4 --json \
  >   | grep -o '"live\.shard\.[a-z.]*"' | sort -u
  "live.shard.evicted"
  "live.shard.group.batch"
  "live.shard.keys"
  "live.shard.materialized"
  "live.shard.resident"
