The crash-point recovery matrix and the storage-fault console.  Jobs
are pinned to 1 so cells run in a fixed order; the table itself is
deterministic by construction (letters, not timings).

  $ export CLI=../../bin/dynvote_cli.exe
  $ export DYNVOTE_JOBS=1

A slice of the matrix: one persist point per file class crossed with a
hard error, a lying fsync, and a crash.  Every cell must come back
Recovered (R) or explicitly Fenced (F) — Unavailable or Corrupt cells
fail the run.

  $ $CLI crashmat --dir cells --points ensemble.rename,data.fsync,oplog.write --faults eio,fsync-lie,crash
  persist point       eio         fsync-lie   crash
  ensemble.rename     R           R           R
  data.fsync          R           R           R
  oplog.write         R           R           R
  9 cells: R recovered, F fenced (explicit, safe), U unavailable, C corrupt
  matrix: PASS (every cell recovered or fenced)

Unknown points and faults are rejected up front, listing the valid
names.

  $ $CLI crashmat --points bogus.point
  unknown persist point "bogus.point" (have: ensemble.write, ensemble.fsync, ensemble.rename, ensemble.fsync-dir, data.write, data.fsync, data.rename, data.fsync-dir, oplog.write, shard.write, shard.fsync, shard.rename, shard.fsync-dir)
  [2]

  $ $CLI crashmat --faults gremlins
  unknown fault "gremlins" (have: eio, enospc, short-write, fsync-fail, fsync-lie, rename-loss, read-eio, crash)
  [2]

The storage-fault console: arm a disk fault on a live site, watch the
struck write fence it read-only, keep serving from the healthy
majority, then power-cycle the victim through a simulated crash and
bring it back with RECOVER.

  $ cat > flow.txt <<'EOF'
  > put 0 color blue
  > fault 0:eio:data
  > put 0 color red
  > degraded
  > put 1 color green
  > get 0 color
  > kill 0
  > crash-sim 0
  > restart 0
  > recover 0
  > get 0 color
  > check
  > EOF

  $ $CLI serve --sites 4 --dir state --seed 7 --script flow.txt | sed -E 's/port [0-9]+/port PORT/'
  serving 4 sites from state (port PORT)
  > put 0 color blue
  granted
  > fault 0:eio:data
  armed eio@1:data/write at site 0
  > put 0 color red
  degraded (degraded: persist failed: EIO (injected))
  > degraded
  site 0: degraded (persist failed: EIO (injected))
  up: {0, 1, 2, 3}
  > put 1 color green
  granted
  > get 0 color
  degraded (degraded: persist failed: EIO (injected))
  > kill 0
  killed 0
  > crash-sim 0
  simulated power cut at site 0
  > restart 0
  restarted 0
  > recover 0
  granted
  > get 0 color
  granted "green"
  > check
  audit: 22 log records, 17 commits, 1 reads checked
  audit: SAFE (0 violations)
  stopped

Console error paths: unknown commands list the vocabulary, malformed
arguments are reported without killing the session, and fault-injection
commands check the target site's state first.

  $ cat > errs.txt <<'EOF'
  > frobnicate
  > kill abc
  > kill 2
  > fault 2:eio:data
  > fault 9:eio
  > fault 2:gremlins
  > crash-sim 0
  > restart 2
  > status
  > EOF

  $ $CLI serve --sites 4 --dir state-errs --script errs.txt | sed -E 's/port [0-9]+/port PORT/'
  serving 4 sites from state-errs (port PORT)
  > frobnicate
  error: unknown command "frobnicate" (put/get/recover/partition/heal/kill/restart/fault/crash-sim/degraded/status/check/stats/sleep)
  > kill abc
  error: malformed command "kill abc"
  > kill 2
  killed 2
  > fault 2:eio:data
  error: site 2 is down — restart it before arming
  > fault 9:eio
  error: no such site 9
  > fault 2:gremlins
  error: unknown fault "gremlins" (one of eio, enospc, short-write, fsync-fail, fsync-lie, rename-loss, read-eio, crash)
  > crash-sim 0
  error: site 0 is up — kill it first
  > restart 2
  restarted 2
  > status
  up: {0, 1, 2, 3}
  stopped

A bad --fault spec on the command line is a usage error, not a boot.

  $ $CLI serve --sites 2 --dir state-bad --fault nonsense --script errs.txt
  bad --fault "nonsense": expected SITE:FAULT[@nth][:file], e.g. 0:fsync-lie:data
  [2]
