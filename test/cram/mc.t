The bounded model checker exhaustively explores the message-level
protocols on the paper's §3 four-copy example (sites A,B on one segment,
C and D alone).  Stdout is deterministic: timing goes to stderr,
and the job count is pinned to 1 so the traversal statistics in the
expected output stay exact.  Partial-order reduction is on by default;
it never changes a verdict, a counterexample, or a state count — only
the transition counts below shrink.

  $ export CLI=../../bin/dynvote_cli.exe
  $ export DYNVOTE_JOBS=1

TDV as published: iterative deepening finds the shortest path to the
split-brain — the §3 counterexample — and replays it through the chaos
harness, which reproduces the identical violation:

  $ $CLI mc --policy tdv --depth 8 2>/dev/null
  mc: 4 sites (segments 0,0,1,2), depth 8, max 1000000 states
  tdv       VIOLATION in 5 steps (1470 states, 11451 transitions)
    schedule: [write@0+crash; write@1; write@1+crash; partition 0x1; recover 0]
    generation 2 committed twice: site 1 saw (v2, {1, 2, 3}) but site 0 saw (v1, {0})
    chaos replay: reproduces the same violation
    expected unsafe: hole confirmed

The hole needs only two sites on one segment — a stale site restarting
and claiming its dead partner's vote:

  $ $CLI mc --policy tdv --sites 2 --segments 0,0 --depth 6 2>/dev/null
  mc: 2 sites (segments 0,0), depth 6, max 1000000 states
  tdv       VIOLATION in 4 steps (48 states, 222 transitions)
    schedule: [write@0+crash; write@1; write@1+crash; recover 0]
    generation 2 committed twice: site 1 saw (v2, {1}) but site 0 saw (v1, {0})
    chaos replay: reproduces the same violation
    expected unsafe: hole confirmed

The corrected flavor and the optimistic policy exhaust the same scope
clean (the full acceptance sweep to depth 8 runs via DYNVOTE_MC_DEPTH):

  $ $CLI mc --policy tdv-safe --depth 6 2>/dev/null
  mc: 4 sites (segments 0,0,1,2), depth 6, max 1000000 states
  tdv-safe  safe to depth 6 (26026 states, 133021 transitions)
    expected safe: OK

  $ $CLI mc --policy odv --depth 6 2>/dev/null
  mc: 4 sites (segments 0,0,1,2), depth 6, max 1000000 states
  odv       safe to depth 6 (50520 states, 350443 transitions)
    expected safe: OK

Switching the reduction off explores the full transition relation —
same states, same verdict, more transitions (the soundness gate in the
test suite checks this equivalence for every policy):

  $ $CLI mc --policy tdv-safe --depth 6 --por off 2>/dev/null
  mc: 4 sites (segments 0,0,1,2), depth 6, max 1000000 states
  tdv-safe  safe to depth 6 (26026 states, 142362 transitions)
    expected safe: OK

All four policies side by side at a shallow bound:

  $ $CLI mc --depth 5 2>/dev/null
  mc: 4 sites (segments 0,0,1,2), depth 5, max 1000000 states
  dv        safe to depth 5 (5388 states, 39501 transitions)
    expected safe: OK
  odv       safe to depth 5 (12871 states, 76880 transitions)
    expected safe: OK
  tdv       VIOLATION in 5 steps (1470 states, 11451 transitions)
    schedule: [write@0+crash; write@1; write@1+crash; partition 0x1; recover 0]
    generation 2 committed twice: site 1 saw (v2, {1, 2, 3}) but site 0 saw (v1, {0})
    chaos replay: reproduces the same violation
    expected unsafe: hole confirmed
  tdv-safe  safe to depth 5 (6670 states, 30770 transitions)
    expected safe: OK

At one job the traversal is strictly sequential whatever the scheduling
flag says: --steal only selects between the work-stealing frontier and
the root-alphabet shards once -j exceeds 1, so both spellings are
byte-identical to the runs above:

  $ $CLI mc --policy tdv --depth 8 --steal off 2>/dev/null
  mc: 4 sites (segments 0,0,1,2), depth 8, max 1000000 states
  tdv       VIOLATION in 5 steps (1470 states, 11451 transitions)
    schedule: [write@0+crash; write@1; write@1+crash; partition 0x1; recover 0]
    generation 2 committed twice: site 1 saw (v2, {1, 2, 3}) but site 0 saw (v1, {0})
    chaos replay: reproduces the same violation
    expected unsafe: hole confirmed

  $ $CLI mc --policy tdv-safe --depth 6 --steal on 2>/dev/null
  mc: 4 sites (segments 0,0,1,2), depth 6, max 1000000 states
  tdv-safe  safe to depth 6 (26026 states, 133021 transitions)
    expected safe: OK

A starved state budget is reported as inconclusive, never as safe:

  $ $CLI mc --policy tdv-safe --depth 6 --max-states 100 2>/dev/null
  mc: 4 sites (segments 0,0,1,2), depth 6, max 100 states
  tdv-safe  inconclusive: state budget exhausted after depth 2 (100 states, 390 transitions)
    no verdict

Spilling the fingerprint store to disk (resident budget in states;
here low enough that the final bound overflows it) changes nothing
observable — the traversal statistics are byte-identical:

  $ DYNVOTE_MC_SPILL=1000 $CLI mc --policy tdv --depth 8 2>/dev/null
  mc: 4 sites (segments 0,0,1,2), depth 8, max 1000000 states
  tdv       VIOLATION in 5 steps (1470 states, 11451 transitions)
    schedule: [write@0+crash; write@1; write@1+crash; partition 0x1; recover 0]
    generation 2 committed twice: site 1 saw (v2, {1, 2, 3}) but site 0 saw (v1, {0})
    chaos replay: reproduces the same violation
    expected unsafe: hole confirmed

Unknown policies are rejected:

  $ $CLI mc --policy paxos
  dynvote: unknown policy "paxos" (try --policy all)
  [2]
