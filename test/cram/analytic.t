Exact Markov analysis is fully deterministic (no simulation involved).

  $ ../../bin/dynvote_cli.exe reliability --copies 2 --mttf 10 --mttr 1
  Exact Markov analysis: 2 identical copies on one segment,
  MTTF 10 days, exponential repair of mean 1 days.
  
  +----------------------+----------+-------------+---------------+----------+--------+---------+
  | Policy               | Unavail  | Mean up (d) | Mean down (d) | MTTF (d) | R(30d) | R(365d) |
  +----------------------+----------+-------------+---------------+----------+--------+---------+
  | DV                   | 0.173554 |        5.00 |        1.0500 |      5.0 | 0.0025 |  0.0000 |
  | LDV                  | 0.090909 |       10.00 |        1.0000 |     10.0 | 0.0498 |  0.0000 |
  | TDV (paper)          | 0.008264 |       60.00 |        0.5000 |     65.0 | 0.6345 |  0.0034 |
  | TDV (safe)           | 0.015778 |       62.38 |        1.0000 |     65.0 | 0.6345 |  0.0034 |
  | ODV (Poisson 1/day)  | 0.090909 |       10.00 |        1.0000 |     10.0 | 0.0498 |  0.0000 |
  | OTDV (Poisson 1/day) | 0.008264 |       60.00 |        0.5000 |     65.0 | 0.6345 |  0.0034 |
  +----------------------+----------+-------------+---------------+----------+--------+---------+
  
  (static MCV closed form: unavailability 0.090909)
