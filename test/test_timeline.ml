(* Timeline: downtime intervals and the ASCII renderer. *)

open Helpers
module Timeline = Dynvote_sim.Timeline
module Config = Dynvote_sim.Config
module Study = Dynvote_sim.Study

let config_f = Option.get (Config.find "F")

let timeline =
  lazy
    (Timeline.collect
       ~parameters:{ Study.default_parameters with seed = 42 }
       ~config:config_f ~start:0.0 ~duration:5000.0 ())

let test_intervals_within_window () =
  let t = Lazy.force timeline in
  List.iter
    (fun kind ->
      List.iter
        (fun (from, till) ->
          if from < 0.0 || till > 5000.0 || from >= till then
            Alcotest.failf "%s: bad interval [%f, %f)" (Policy.kind_name kind) from till)
        (Timeline.outages t kind))
    Policy.all_kinds

let test_downtime_is_interval_sum () =
  let t = Lazy.force timeline in
  List.iter
    (fun kind ->
      let total =
        List.fold_left (fun acc (a, b) -> acc +. (b -. a)) 0.0 (Timeline.outages t kind)
      in
      check_float_tol 1e-9
        (Policy.kind_name kind ^ " downtime")
        total (Timeline.downtime t kind))
    Policy.all_kinds

let test_matches_study_unavailability () =
  (* With no warm-up, the window's downtime fraction must equal the study's
     unavailability on the same horizon and seed. *)
  let t = Lazy.force timeline in
  let parameters =
    { Study.default_parameters with seed = 42; horizon = 5000.0; warmup = 0.0; batches = 2 }
  in
  let results = Study.run ~parameters ~configs:[ config_f ] () in
  List.iter
    (fun r ->
      check_float_tol 1e-9
        (Policy.kind_name r.Study.kind ^ " fraction")
        r.Study.unavailability
        (Timeline.downtime t r.Study.kind /. 5000.0))
    results

let test_known_orderings () =
  let t = Lazy.force timeline in
  Alcotest.(check bool) "DV down the longest on F" true
    (List.for_all
       (fun kind -> Timeline.downtime t Policy.Dv >= Timeline.downtime t kind)
       Policy.all_kinds);
  Alcotest.(check bool) "TDV-family down the least" true
    (Timeline.downtime t Policy.Tdv <= Timeline.downtime t Policy.Ldv)

let test_rendering () =
  let t = Lazy.force timeline in
  let out = Fmt.str "%a" (Timeline.pp ~columns:40) t in
  let lines = String.split_on_char '\n' out in
  (* Header plus one strip per policy. *)
  Alcotest.(check bool) "seven non-empty lines" true
    (List.length (List.filter (fun l -> String.length l > 0) lines) >= 7);
  Alcotest.(check bool) "strips contain availability cells" true
    (String.contains out '#')

let test_window_validation () =
  Alcotest.check_raises "bad window" (Invalid_argument "Timeline.collect: bad window")
    (fun () ->
      ignore (Timeline.collect ~config:config_f ~start:0.0 ~duration:0.0 ()))

let suite =
  [
    Alcotest.test_case "intervals within window" `Quick test_intervals_within_window;
    Alcotest.test_case "downtime = interval sum" `Quick test_downtime_is_interval_sum;
    Alcotest.test_case "matches study unavailability" `Quick test_matches_study_unavailability;
    Alcotest.test_case "known orderings" `Quick test_known_orderings;
    Alcotest.test_case "rendering" `Quick test_rendering;
    Alcotest.test_case "window validation" `Quick test_window_validation;
  ]
