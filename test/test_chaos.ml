(* Chaos harness: determinism of campaigns, the published-TDV regression
   catch (with qcheck shrinking down to a minimal trace), the
   atomic-update requirement, delivery-order independence under
   duplication and delay, and the torn-stable-record recovery path. *)

open Helpers
module Harness = Dynvote_chaos.Harness
module Schedule = Dynvote_chaos.Schedule
module Oracle = Dynvote_chaos.Oracle
module Fault_plan = Dynvote_chaos.Fault_plan
module Splitmix64 = Dynvote_prng.Splitmix64

let policy name =
  match Harness.policy_of_string name with
  | Some p -> p
  | None -> Alcotest.failf "no policy %S" name

(* --- Campaign determinism --- *)

let test_determinism () =
  let campaign () =
    Harness.run_many ~policy:(policy "ldv") ~seed:99L ~schedules:60 ()
  in
  let a = campaign () and b = campaign () in
  Alcotest.(check bool) "same seed, identical summary" true (a = b);
  Alcotest.(check int) "all schedules ran" 60 a.Harness.schedules;
  Alcotest.(check bool) "campaign did real work" true (a.Harness.granted > 0);
  let c = Harness.run_many ~policy:(policy "ldv") ~seed:100L ~schedules:60 () in
  Alcotest.(check bool) "different seed, different campaign" true (a <> c)

let test_safe_policies_hold () =
  List.iter
    (fun p ->
      let s = Harness.run_many ~policy:p ~seed:11L ~schedules:120 () in
      if p.Harness.expect_safe then
        Alcotest.(check int)
          (p.Harness.name ^ " has no violations")
          0 s.Harness.failures;
      Alcotest.(check bool) (p.Harness.name ^ " verdict ok") true
        (Harness.verdict_ok s))
    Harness.policies

(* --- The regression catch: TDV as published is unsafe --- *)

(* Two sites on one segment: the smallest universe where a stale site can
   claim its partner's vote.  Integer codes stay below 96 so every value
   decodes to a step with detail 0..3 — the space qcheck shrinks in. *)
let two_sites flavor =
  {
    (Harness.default_config ~flavor ()) with
    Harness.universe = Site_set.of_list [ 0; 1 ];
    segment_of = (fun _ -> 0);
  }

let no_violations flavor codes =
  (Harness.run_ints (two_sites flavor) codes).Harness.violations = []

let schedule_codes = Generators.schedule_codes

let test_tdv_hole_caught () =
  let cell =
    QCheck.Test.make ~count:500 ~name:"tdv (as published) is safe"
      schedule_codes
      (no_violations Decision.tdv_flavor)
  in
  match QCheck.Test.check_exn ~rand:(Random.State.make [| 0x7d7 |]) cell with
  | () -> Alcotest.fail "harness failed to catch the published TDV hole"
  | exception QCheck.Test.Test_fail (_, counterexamples) ->
      Alcotest.(check bool) "shrunk counterexample reported" true
        (counterexamples <> [])

(* The shrunk trace the generator converges to: crash a site, advance the
   survivor past it (claiming the crashed vote), crash the survivor,
   restart the stale site — which now claims the *other* vote with stale
   knowledge and re-issues the same generation. *)
let minimal_trace = [ 13; 0; 12; 17; 1 ]
(* = [crash 1; write@0; crash 0; restart 1; write@1] at two sites *)

let test_minimal_trace_trips_tdv () =
  let r = Harness.run_ints (two_sites Decision.tdv_flavor) minimal_trace in
  Alcotest.(check bool) "generation conflict found" true
    (List.exists
       (function Oracle.Generation_conflict _ -> true | _ -> false)
       r.Harness.violations);
  Alcotest.(check bool) "content fork found" true
    (List.exists
       (function Oracle.Content_fork _ -> true | _ -> false)
       r.Harness.violations)

let prop_tdv_safe_survives =
  qcheck_case ~count:500 ~name:"tdv-safe survives the tdv-killing generator"
    schedule_codes
    (no_violations Decision.tdv_safe_flavor)

let test_minimal_trace_safe_for_corrected () =
  List.iter
    (fun flavor ->
      let r = Harness.run_ints (two_sites flavor) minimal_trace in
      Alcotest.(check int) "no violations" 0 (List.length r.Harness.violations))
    [ Decision.dv_flavor; Decision.ldv_flavor; Decision.tdv_safe_flavor ]

(* --- The atomic-update requirement --- *)

(* Tear a commit wave in half: partition {0,1,2}, write there with the
   coordinator killed mid-commit, heal, lose the one surviving applier —
   the remaining majority of the *old* partition knows nothing of the
   half-committed operation and re-issues its generation number.  The
   paper avoids this by making update operations atomic; the harness
   reproduces it the moment that assumption is dropped. *)
let mid_commit_steps crash_site =
  Schedule.
    [ Partition 0b00111; Crash_coordinator 0; Heal; Crash crash_site; Write 3 ]

let test_mid_commit_splits_brain () =
  let unsafe =
    {
      (Harness.default_config ()) with
      Harness.crash_point = `Mid_commit;
      expose_commits = true;
    }
  in
  List.iter
    (fun crash_site ->
      let r, _ =
        Harness.run unsafe
          { Schedule.steps = mid_commit_steps crash_site; faults = Fault_plan.silent }
      in
      Alcotest.(check bool) "generation committed twice" true
        (List.exists
           (function Oracle.Generation_conflict _ -> true | _ -> false)
           r.Harness.violations))
    [ 1; 2 ]

let test_after_decide_crash_is_safe () =
  (* Same schedule under the paper's model (atomic updates, coordinator
     crashes only ever abort): nothing to flag. *)
  List.iter
    (fun crash_site ->
      let r, _ =
        Harness.run (Harness.default_config ())
          { Schedule.steps = mid_commit_steps crash_site; faults = Fault_plan.silent }
      in
      Alcotest.(check int) "no violations" 0 (List.length r.Harness.violations))
    [ 1; 2 ]

(* --- Delivery-order independence (duplication + delay only) --- *)

(* Duplicated and reordered-but-bounded delivery must be invisible:
   commit installation is idempotent and gathers are round-tagged, so a
   faulty run's operation log matches the fault-free run step for step. *)
let dup_delay_faults =
  { Fault_plan.silent with Fault_plan.duplicate = 0.3; delay = 0.4; delay_bound = 0.05 }

let prop_dup_delay_invisible =
  qcheck_case ~count:250 ~name:"duplication+delay do not change outcomes"
    QCheck.(
      pair (int_range 0 1_000_000)
        (list_of_size Gen.(int_range 5 20) (int_range 0 245_759)))
    (fun (seed, codes) ->
      let config = Harness.default_config () in
      let rng () = Splitmix64.create (Int64.of_int seed) in
      let clean = Harness.run_ints ~rng:(rng ()) config codes in
      let noisy =
        Harness.run_ints ~rng:(rng ()) ~faults:dup_delay_faults config codes
      in
      clean.Harness.op_log = noisy.Harness.op_log
      && clean.Harness.violations = [] && noisy.Harness.violations = [])

(* --- Torn stable records: fuzz the codec, then recover through it --- *)

let codec_sample = Replica.make ~op_no:7 ~version:5 ~partition:(ss [ 0; 1; 2 ])

let prop_decode_total_on_junk =
  qcheck_case ~count:500 ~name:"decode_result never raises on junk"
    QCheck.(string_gen_of_size Gen.(int_range 0 64) Gen.char)
    (fun junk ->
      match Codec.decode_result junk with Ok _ | Error _ -> true)

let prop_mutations_rejected =
  qcheck_case ~count:500 ~name:"truncated/flipped/zeroed records decode to Error"
    QCheck.(triple (int_range 0 2) small_nat small_nat)
    (fun (kind, a, b) ->
      let encoded = Codec.encode_replica codec_sample in
      let mutated =
        match kind with
        | 0 -> String.sub encoded 0 (a mod String.length encoded)
        | 1 ->
            let bytes = Bytes.of_string encoded in
            let i = a mod Bytes.length bytes in
            Bytes.set bytes i
              (Char.chr (Char.code (Bytes.get bytes i) lxor (1 lsl (b mod 8))));
            Bytes.to_string bytes
        | _ -> ""
      in
      match Codec.decode_result mutated with Error _ -> true | Ok _ -> false)

let test_load_result_total () =
  let path = Filename.temp_file "dynvote_chaos" ".state" in
  let write_raw content =
    let oc = open_out_bin path in
    output_string oc content;
    close_out oc
  in
  write_raw "torn";
  (match Codec.load_result ~path () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "torn file accepted");
  Sys.remove path;
  match Codec.load_result ~path () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing file accepted"

let test_corrupt_record_recovery () =
  (* A crash tears the stable record; the restarted site must come back
     amnesiac (a silent non-voter), reintegrate through RECOVER, and then
     serve operations — all without tripping the oracle. *)
  List.iter
    (fun corruption ->
      let steps =
        Schedule.
          [
            Write 0;
            Crash 1;
            Restart (1, Some corruption);
            Recover 1;
            Write 1;
            Read 1;
          ]
      in
      let r, _ =
        Harness.run (Harness.default_config ())
          { Schedule.steps; faults = Fault_plan.silent }
      in
      Alcotest.(check int)
        (Schedule.corruption_name corruption ^ ": no violations")
        0
        (List.length r.Harness.violations);
      Alcotest.(check int)
        (Schedule.corruption_name corruption ^ ": one record corrupted")
        1 r.Harness.corrupted;
      match List.rev r.Harness.op_log with
      | (Schedule.Read 1, true, Some content) :: _ ->
          Alcotest.(check string)
            (Schedule.corruption_name corruption ^ ": read sees last write")
            "w2" content
      | _ -> Alcotest.fail "final read at the recovered site was not granted")
    [ Schedule.Truncate; Schedule.Bit_flip; Schedule.Zero ]

let suite =
  [
    Alcotest.test_case "campaigns are deterministic" `Quick test_determinism;
    Alcotest.test_case "safe policies hold under chaos" `Quick test_safe_policies_hold;
    Alcotest.test_case "published tdv hole is caught" `Quick test_tdv_hole_caught;
    Alcotest.test_case "minimal trace trips tdv" `Quick test_minimal_trace_trips_tdv;
    prop_tdv_safe_survives;
    Alcotest.test_case "minimal trace safe for corrected flavors" `Quick
      test_minimal_trace_safe_for_corrected;
    Alcotest.test_case "mid-commit crash splits the brain" `Quick
      test_mid_commit_splits_brain;
    Alcotest.test_case "after-decide crash is safe" `Quick
      test_after_decide_crash_is_safe;
    prop_dup_delay_invisible;
    prop_decode_total_on_junk;
    prop_mutations_rejected;
    Alcotest.test_case "load_result is total" `Quick test_load_result_total;
    Alcotest.test_case "corrupt record -> amnesia -> recover" `Quick
      test_corrupt_record_recovery;
  ]
