(* Decision: Algorithm 1 with all three flavors, including the worked
   states of the paper's §2 and §3, and the central mutual-exclusion
   property. *)

open Helpers

let ordering8 = Ordering.default 8
let same_segment = fun _ -> 0

let eval ?(flavor = Decision.ldv_flavor) ?(segment_of = same_segment) ?fresh states reachable
    =
  Decision.evaluate flavor ~ordering:ordering8 ~segment_of ?fresh ~states
    ~reachable:(ss reachable) ()

let granted = function Decision.Granted _ -> true | Decision.Denied _ -> false

(* Initial state: everyone participates, any single majority works. *)
let test_initial_majority () =
  let states = states ~universe:[ 0; 1; 2 ] [] in
  Alcotest.(check bool) "all three" true (granted (eval states [ 0; 1; 2 ]));
  Alcotest.(check bool) "two of three" true (granted (eval states [ 0; 2 ]));
  Alcotest.(check bool) "one of three" false (granted (eval states [ 1 ]))

let test_empty_reachable () =
  let states = states ~universe:[ 0; 1; 2 ] [] in
  match eval states [] with
  | Decision.Denied Decision.No_reachable_copy -> ()
  | v -> Alcotest.failf "expected No_reachable_copy, got %a" Decision.pp_verdict v

(* The paper's §2 walkthrough: after B fails and the quorum shrank to
   {A, C}, the A-C link fails.  A alone wins the tie (A > C); C loses. *)
let test_paper_tie_break () =
  let states =
    states ~universe:[ 0; 1; 2 ]
      [ (0, 11, 11, [ 0; 2 ]); (2, 11, 11, [ 0; 2 ]); (1, 8, 8, [ 0; 1; 2 ]) ]
  in
  Alcotest.(check bool) "A alone wins the tie" true (granted (eval states [ 0 ]));
  Alcotest.(check bool) "C alone loses the tie" false (granted (eval states [ 2 ]));
  (match eval states [ 2 ] with
  | Decision.Denied (Decision.Tie_lost { max_element }) ->
      Alcotest.(check int) "tie lost to A" 0 max_element
  | v -> Alcotest.failf "expected Tie_lost, got %a" Decision.pp_verdict v);
  (* Plain DV cannot break the tie on either side. *)
  (match eval ~flavor:Decision.dv_flavor states [ 0 ] with
  | Decision.Denied Decision.Tie_unbroken -> ()
  | v -> Alcotest.failf "expected Tie_unbroken, got %a" Decision.pp_verdict v);
  Alcotest.(check bool) "DV: C denied too" false
    (granted (eval ~flavor:Decision.dv_flavor states [ 2 ]))

(* The stale copy B cannot grant against the advanced quorum {A, C}. *)
let test_stale_minority () =
  let states =
    states ~universe:[ 0; 1; 2 ]
      [ (0, 11, 11, [ 0; 2 ]); (2, 11, 11, [ 0; 2 ]); (1, 8, 8, [ 0; 1; 2 ]) ]
  in
  (match eval states [ 1 ] with
  | Decision.Denied (Decision.Below_majority { have; quorum_size }) ->
      Alcotest.(check int) "one supporter" 1 have;
      Alcotest.(check int) "of three" 3 quorum_size
  | v -> Alcotest.failf "expected Below_majority, got %a" Decision.pp_verdict v);
  (* B together with a current copy is decided by the current copy's
     partition set — {A, C} — so {B, C} holds half with C not the max... *)
  Alcotest.(check bool) "B+C: tie lost (A is max)" false (granted (eval states [ 1; 2 ]));
  (* ...while {A, B} holds the max element A. *)
  Alcotest.(check bool) "A+B: tie won" true (granted (eval states [ 0; 1 ]))

let test_q_and_s_fields () =
  let states =
    states ~universe:[ 0; 1; 2 ]
      [ (0, 12, 11, [ 0; 2 ]); (2, 12, 11, [ 0; 2 ]); (1, 8, 8, [ 0; 1; 2 ]) ]
  in
  match eval states [ 0; 1; 2 ] with
  | Decision.Granted g ->
      Alcotest.check set_testable "Q = current sites" (ss [ 0; 2 ]) g.Decision.q;
      Alcotest.check set_testable "S = max version" (ss [ 0; 2 ]) g.Decision.s;
      Alcotest.check set_testable "P_m" (ss [ 0; 2 ]) g.Decision.p_m
  | v -> Alcotest.failf "expected grant, got %a" Decision.pp_verdict v

(* S can be wider than Q: a copy that missed read-quorum updates (lower o)
   but holds the newest data (same v). *)
let test_s_wider_than_q () =
  let states =
    states ~universe:[ 0; 1; 2 ]
      [ (0, 12, 9, [ 0; 2 ]); (2, 12, 9, [ 0; 2 ]); (1, 10, 9, [ 0; 1; 2 ]) ]
  in
  match eval states [ 0; 1; 2 ] with
  | Decision.Granted g ->
      Alcotest.check set_testable "Q excludes the op-stale copy" (ss [ 0; 2 ]) g.Decision.q;
      Alcotest.check set_testable "S includes it" (ss [ 0; 1; 2 ]) g.Decision.s
  | v -> Alcotest.failf "expected grant, got %a" Decision.pp_verdict v

(* §3 topological example: A and B on segment alpha, C on gamma, D on
   delta.  With quorum {A, B}, B alone can claim A's vote. *)
let segment_3 site = match site with 0 | 1 -> 0 | 2 -> 1 | _ -> 2

let test_topological_claim () =
  let states =
    states ~universe:[ 0; 1; 2; 3 ]
      [
        (0, 15, 15, [ 0; 1 ]); (1, 15, 15, [ 0; 1 ]);
        (2, 11, 11, [ 0; 1; 2 ]); (3, 8, 8, [ 0; 1; 2; 3 ]);
      ]
  in
  (* Under LDV, B alone loses the tie to A... *)
  Alcotest.(check bool) "LDV: B alone denied" false
    (granted (eval ~segment_of:segment_3 states [ 1 ]));
  (* ...but under TDV, B claims A's vote since they share segment alpha. *)
  (match eval ~flavor:Decision.tdv_flavor ~segment_of:segment_3 states [ 1 ] with
  | Decision.Granted g ->
      Alcotest.check set_testable "claimed set is {A, B}" (ss [ 0; 1 ]) g.Decision.claimed
  | v -> Alcotest.failf "expected TDV grant, got %a" Decision.pp_verdict v);
  (* C cannot claim anything: it is alone on its segment. *)
  Alcotest.(check bool) "TDV: C alone denied" false
    (granted (eval ~flavor:Decision.tdv_flavor ~segment_of:segment_3 states [ 2 ]))

(* A claimed dead site cannot carry the lexicographic tie-break: with
   P_m = {A, B, C, D}, A+B down, C claiming nothing... arrange a tie where
   T reaches exactly half through claiming but max(P_m) is dead. *)
let test_claimed_votes_no_tie_break () =
  (* A, B share a segment; C, D share another.  P = {A,B,C,D}.  C alone:
     T = {C, D} = half, but max(P) = A is not in Q = {C}. *)
  let seg site = if site <= 1 then 0 else 1 in
  let states = states ~universe:[ 0; 1; 2; 3 ] [] in
  (match eval ~flavor:Decision.tdv_flavor ~segment_of:seg states [ 2 ] with
  | Decision.Denied (Decision.Tie_lost _) -> ()
  | v -> Alcotest.failf "expected Tie_lost, got %a" Decision.pp_verdict v);
  (* A alone: T = {A, B} = half and A = max(P) is present: granted. *)
  Alcotest.(check bool) "A claims B and wins tie" true
    (granted (eval ~flavor:Decision.tdv_flavor ~segment_of:seg states [ 0 ]))

(* The freshness condition: a restarted (non-fresh) site cannot claim dead
   same-segment votes.  Without the condition, site 0 — which crashed at
   o = 5 and restarted while the real majority block {2} (o = 9) is down —
   would claim its dead segment-mates and resurrect the file with stale
   data. *)
let test_stale_site_cannot_resurrect () =
  let states =
    states ~universe:[ 0; 1; 2 ]
      [ (0, 5, 5, [ 0; 1; 2 ]); (1, 7, 7, [ 1; 2 ]); (2, 9, 9, [ 2 ]) ]
  in
  (* Site 0 restarted: it is reachable but not fresh. *)
  (match
     eval ~flavor:Decision.tdv_safe_flavor ~fresh:Site_set.empty states [ 0 ]
   with
  | Decision.Denied (Decision.Rival_possible { rivals }) ->
      (* The dead sites 1 and 2 — unsilenced, since nobody here is fresh —
         could have continued the file by claiming their segment-mates. *)
      Alcotest.check set_testable "rival lineage identified" (ss [ 0; 1; 2 ]) rivals
  | v -> Alcotest.failf "expected Rival_possible, got %a" Decision.pp_verdict v);
  (* The figure-literal flavor grants here even when told nobody is fresh
     — documenting exactly the split-brain the safe variant prevents. *)
  Alcotest.(check bool) "paper flavor is unsafe here" true
    (granted (eval ~flavor:Decision.tdv_flavor ~fresh:Site_set.empty states [ 0 ]));
  (* The true majority block member restarting alone *can* proceed: it is
     a majority of its own (singleton) quorum, no claiming needed. *)
  Alcotest.(check bool) "block member restarts fine" true
    (granted (eval ~flavor:Decision.tdv_safe_flavor ~fresh:Site_set.empty states [ 2 ]))

(* When every copy shares one segment, TDV degenerates to available copy:
   any single live quorum member suffices. *)
let test_tdv_available_copy_degeneration () =
  let states = states ~universe:[ 0; 1; 2; 3 ] [] in
  List.iter
    (fun site ->
      Alcotest.(check bool)
        (Printf.sprintf "site %d alone suffices" site)
        true
        (granted (eval ~flavor:Decision.tdv_flavor ~segment_of:same_segment states [ site ])))
    [ 0; 1; 2; 3 ]

(* Mutual exclusion: whatever the (reachable-consistent) replica states,
   no two disjoint groups are granted simultaneously.  We generate states
   by running random refresh histories — which is how reachable states
   arise — then test every 2-partition of the universe. *)

let random_history_states rng n_ops =
  let universe = ss [ 0; 1; 2; 3; 4 ] in
  let arr = Array.make 8 (Replica.initial universe) in
  let ctx =
    { Operation.flavor = Decision.ldv_flavor; ordering = ordering8; segment_of = same_segment }
  in
  for _ = 1 to n_ops do
    (* Random subset as the live component. *)
    let live =
      Site_set.filter (fun _ -> QCheck.Gen.bool rng) universe
    in
    if not (Site_set.is_empty live) then ignore (Operation.refresh ctx arr ~reachable:live ())
  done;
  arr

let arb_history_states =
  QCheck.make
    (QCheck.Gen.map
       (fun (seed_ops : int) ->
         let rng = Random.State.make [| seed_ops |] in
         random_history_states rng (5 + (seed_ops mod 20)))
       QCheck.Gen.(0 -- 10_000))
    ~print:(fun arr ->
      String.concat "; "
        (List.init 5 (fun i -> Fmt.str "%d:%a" i Replica.pp arr.(i))))

let all_two_partitions universe =
  let members = Site_set.to_list universe in
  let n = List.length members in
  let out = ref [] in
  for mask = 1 to (1 lsl n) - 2 do
    let a =
      List.fold_left
        (fun (i, acc) site ->
          (i + 1, if mask land (1 lsl i) <> 0 then Site_set.add site acc else acc))
        (0, Site_set.empty) members
      |> snd
    in
    let b = Site_set.diff universe a in
    out := (a, b) :: !out
  done;
  !out

(* Physically possible partitions never split a segment (carrier-sense
   networks cannot partition internally) — the assumption TDV's safety
   rests on. *)
let segment_respecting partitions segment_of =
  List.filter
    (fun (a, b) ->
      let intact side =
        Site_set.for_all
          (fun i ->
            Site_set.for_all
              (fun j -> segment_of i <> segment_of j || Site_set.mem j side)
              (Site_set.union a b))
          side
      in
      intact a && intact b)
    partitions

let mutual_exclusion_prop ?(respect_segments = false) flavor segment_of states =
  let universe = ss [ 0; 1; 2; 3; 4 ] in
  let partitions = all_two_partitions universe in
  let partitions =
    if respect_segments then segment_respecting partitions segment_of else partitions
  in
  List.for_all
    (fun (a, b) ->
      let va =
        Decision.evaluate flavor ~ordering:ordering8 ~segment_of ~states ~reachable:a ()
      in
      let vb =
        Decision.evaluate flavor ~ordering:ordering8 ~segment_of ~states ~reachable:b ()
      in
      not (Decision.is_granted va && Decision.is_granted vb))
    partitions

let seg_mixed site = match site with 0 | 1 -> 0 | 2 | 3 -> 1 | _ -> 2

(* The flip side: if a partition could split a segment, TDV would grant two
   disjoint groups — demonstrating why the indivisible-segment assumption
   is load-bearing. *)
let test_tdv_unsafe_on_split_segment () =
  let states = Array.make 8 (Replica.initial (ss [ 0; 1 ])) in
  let seg = fun _ -> 0 in
  let eval r =
    Decision.evaluate Decision.tdv_flavor ~ordering:ordering8 ~segment_of:seg ~states
      ~reachable:(ss r) ()
  in
  Alcotest.(check bool) "left half grants" true (Decision.is_granted (eval [ 0 ]));
  Alcotest.(check bool) "right half grants too" true (Decision.is_granted (eval [ 1 ]))

let props =
  [
    qcheck_case ~count:300 ~name:"mutual exclusion (DV)" arb_history_states
      (mutual_exclusion_prop Decision.dv_flavor same_segment);
    qcheck_case ~count:300 ~name:"mutual exclusion (LDV)" arb_history_states
      (mutual_exclusion_prop Decision.ldv_flavor same_segment);
    qcheck_case ~count:300 ~name:"mutual exclusion (TDV, segment-respecting)"
      arb_history_states
      (mutual_exclusion_prop ~respect_segments:true Decision.tdv_flavor seg_mixed);
    qcheck_case ~count:300 ~name:"DV grants imply LDV grants" arb_history_states
      (fun states ->
        let universe = ss [ 0; 1; 2; 3; 4 ] in
        List.for_all
          (fun (a, _) ->
            let dv =
              Decision.evaluate Decision.dv_flavor ~ordering:ordering8
                ~segment_of:same_segment ~states ~reachable:a ()
            in
            let ldv =
              Decision.evaluate Decision.ldv_flavor ~ordering:ordering8
                ~segment_of:same_segment ~states ~reachable:a ()
            in
            (not (Decision.is_granted dv)) || Decision.is_granted ldv)
          (all_two_partitions universe));
  ]

let suite =
  [
    Alcotest.test_case "initial majority" `Quick test_initial_majority;
    Alcotest.test_case "empty reachable set" `Quick test_empty_reachable;
    Alcotest.test_case "paper tie-break (A beats C)" `Quick test_paper_tie_break;
    Alcotest.test_case "stale minority denied" `Quick test_stale_minority;
    Alcotest.test_case "Q and S fields" `Quick test_q_and_s_fields;
    Alcotest.test_case "S wider than Q" `Quick test_s_wider_than_q;
    Alcotest.test_case "topological vote claiming" `Quick test_topological_claim;
    Alcotest.test_case "claimed votes cannot tie-break" `Quick test_claimed_votes_no_tie_break;
    Alcotest.test_case "stale site cannot resurrect (freshness)" `Quick
      test_stale_site_cannot_resurrect;
    Alcotest.test_case "TDV degenerates to available copy" `Quick
      test_tdv_available_copy_degeneration;
    Alcotest.test_case "TDV unsafe if a segment could split" `Quick
      test_tdv_unsafe_on_split_segment;
  ]
  @ props
