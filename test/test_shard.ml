(* The sharded object space: the Zipf key sampler, the per-shard
   log-structured store, the bounded-residency LRU map, and the keyed
   live protocol — group quorums, per-key oracles, exactly-once retries
   under a struck coordinator, amnesia after shard-log loss. *)

open Helpers
module Zipf = Dynvote_shard.Zipf
module Shard_store = Dynvote_shard.Shard_store
module Shard_map = Dynvote_shard.Shard_map
module Wire = Dynvote_live.Wire
module Live = Dynvote_live.Cluster
module Loadgen = Dynvote_live.Loadgen
module Node = Dynvote_live.Node
module Oracle = Dynvote_chaos.Oracle
module Hub = Dynvote_obs.Hub
module Metrics = Dynvote_obs.Metrics
module Rng = Dynvote_prng.Rng

let u4 = ss [ 0; 1; 2; 3 ]

(* --- scratch directories (same discipline as the live suite) -------- *)

let scratch_counter = ref 0

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let with_scratch f =
  incr scratch_counter;
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "dynvote-shard-%d-%d" (Unix.getpid ()) !scratch_counter)
  in
  rm_rf dir;
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path content =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc content)

let expect_invalid name f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail (name ^ ": expected Invalid_argument")

(* --- Zipf sampler ---------------------------------------------------- *)

let test_zipf_validation () =
  expect_invalid "n = 0" (fun () -> Zipf.create ~n:0 ~s:1.0);
  expect_invalid "negative s" (fun () -> Zipf.create ~n:8 ~s:(-0.5));
  expect_invalid "nan s" (fun () -> Zipf.create ~n:8 ~s:Float.nan);
  expect_invalid "infinite s" (fun () -> Zipf.create ~n:8 ~s:Float.infinity);
  let z = Zipf.create ~n:8 ~s:0.0 in
  Alcotest.(check int) "n recorded" 8 (Zipf.n z);
  check_float "s recorded" 0.0 (Zipf.s z)

let test_zipf_mass () =
  List.iter
    (fun s ->
      let z = Zipf.create ~n:50 ~s in
      let sum = ref 0.0 in
      for k = 0 to 49 do
        sum := !sum +. Zipf.mass z k
      done;
      check_float_tol 1e-9 (Printf.sprintf "mass sums to 1 at s=%.1f" s) 1.0 !sum)
    [ 0.0; 0.7; 1.0; 1.4 ];
  let uniform = Zipf.create ~n:10 ~s:0.0 in
  for k = 0 to 9 do
    check_float_tol 1e-9 "s=0 mass is uniform" 0.1 (Zipf.mass uniform k)
  done

let test_zipf_determinism () =
  let z = Zipf.create ~n:100 ~s:1.1 in
  let draw seed =
    let rng = Rng.create ~seed () in
    List.init 500 (fun _ -> Zipf.sample z (Rng.float rng))
  in
  Alcotest.(check (list int)) "same seed, same ranks" (draw 42L) (draw 42L);
  Alcotest.(check bool) "different seed diverges" true (draw 42L <> draw 43L);
  (* Monotone in the variate: equal variates give equal ranks, and the
     extremes map to the extremes of the rank space. *)
  Alcotest.(check int) "u=0 is rank 0" 0 (Zipf.sample z 0.0);
  Alcotest.(check bool) "ranks stay in range" true
    (List.for_all (fun k -> k >= 0 && k < 100) (draw 7L))

(* Sampling is total: any float variate — negative, >= 1, adversarially
   close to 1, or NaN — maps to a rank in [0, n), for any n and s.  The
   in-range argument is the loop invariant documented at the search;
   this is its executable counterpart. *)
let prop_zipf_sample_total =
  qcheck_case ~count:500 ~name:"zipf sample is total and in range"
    QCheck.(triple (int_range 1 200) (int_range 0 40) float)
    (fun (n, s_tenths, u) ->
      let z = Zipf.create ~n ~s:(float_of_int s_tenths /. 10.0) in
      let k = Zipf.sample z u in
      0 <= k && k < n)

let test_zipf_sample_edge_variates () =
  List.iter
    (fun (n, s) ->
      let z = Zipf.create ~n ~s in
      List.iter
        (fun (name, u) ->
          let k = Zipf.sample z u in
          Alcotest.(check bool)
            (Printf.sprintf "u=%s in range at n=%d s=%.1f (got %d)" name n s k)
            true
            (0 <= k && k < n))
        [
          ("0", 0.0); ("pred 1", Float.pred 1.0); ("1", 1.0); ("2", 2.0);
          ("-1", -1.0); ("nan", Float.nan); ("inf", Float.infinity);
          ("-inf", Float.neg_infinity); ("min_float", Float.min_float);
          ("-0", -0.0);
        ])
    [ (1, 0.0); (1, 4.0); (2, 1.0); (7, 0.0); (100, 4.0) ]

(* The rank-frequency curve is a distribution at the exponents the
   soaks use (uniform and heavily skewed) and at the degenerate single
   rank, whatever the table size. *)
let prop_zipf_mass_sums =
  qcheck_case ~count:200 ~name:"zipf mass sums to 1 (s=0 and s=4)"
    QCheck.(pair (int_range 1 300) bool)
    (fun (n, skewed) ->
      let z = Zipf.create ~n ~s:(if skewed then 4.0 else 0.0) in
      let sum = ref 0.0 in
      for k = 0 to n - 1 do
        sum := !sum +. Zipf.mass z k
      done;
      Float.abs (!sum -. 1.0) <= 1e-9)

let test_zipf_single_rank () =
  List.iter
    (fun s ->
      let z = Zipf.create ~n:1 ~s in
      check_float_tol 1e-9
        (Printf.sprintf "n=1 mass is 1 at s=%.1f" s)
        1.0 (Zipf.mass z 0);
      Alcotest.(check int) "n=1 always samples rank 0" 0
        (Zipf.sample z 0.999999999999))
    [ 0.0; 4.0 ]

let empirical ~n ~s ~draws =
  let z = Zipf.create ~n ~s in
  let rng = Rng.create ~seed:11L () in
  let counts = Array.make n 0 in
  for _ = 1 to draws do
    let k = Zipf.sample z (Rng.float rng) in
    counts.(k) <- counts.(k) + 1
  done;
  (z, counts)

let test_zipf_uniform () =
  let _, counts = empirical ~n:10 ~s:0.0 ~draws:20_000 in
  Array.iteri
    (fun k c ->
      Alcotest.(check bool)
        (Printf.sprintf "rank %d near 1/n (got %d)" k c)
        true
        (close_rel ~rel:0.1 2000.0 (float_of_int c)))
    counts

let test_zipf_slope () =
  let z, counts = empirical ~n:64 ~s:1.1 ~draws:40_000 in
  let freq k = float_of_int counts.(k) /. 40_000.0 in
  Alcotest.(check bool)
    (Printf.sprintf "head frequency matches mass (got %.4f, want %.4f)" (freq 0)
       (Zipf.mass z 0))
    true
    (close_rel ~rel:0.1 (Zipf.mass z 0) (freq 0));
  Alcotest.(check bool) "rank 0 beats rank 8" true (counts.(0) > counts.(8));
  Alcotest.(check bool) "rank 8 beats rank 32" true (counts.(8) > counts.(32))

(* --- Shard_store ----------------------------------------------------- *)

let mk_rid ~client ~req = (client lsl 32) lor req

let st ~op_no ~version ~partition ~data_version ~value =
  { Shard_store.op_no; version; partition; data_version; value }

let test_store_roundtrip () =
  with_scratch (fun dir ->
      let store, scan = Shard_store.open_store ~dir ~site:0 ~shards:4 () in
      Alcotest.(check int) "fresh store is empty" 0 scan.Shard_store.keys;
      let s1 =
        st ~op_no:2 ~version:2 ~partition:(ss [ 0; 1; 2 ]) ~data_version:2
          ~value:(Some "v1")
      in
      Shard_store.commit store ~key:"alpha" ~rid:(mk_rid ~client:1 ~req:5) s1;
      Shard_store.commit store ~key:"beta" ~rid:0
        (st ~op_no:3 ~version:1 ~partition:u4 ~data_version:1 ~value:None);
      (* Same value bytes again: exercises the Unchanged encoding. *)
      Shard_store.commit store ~key:"alpha" ~rid:(mk_rid ~client:1 ~req:6)
        { s1 with op_no = 3 };
      Shard_store.commit store ~key:"alpha" ~rid:(mk_rid ~client:2 ~req:1)
        (st ~op_no:4 ~version:3 ~partition:(ss [ 0; 1 ]) ~data_version:3
           ~value:(Some "v2"));
      Shard_store.save_rids store [ (9, 77) ];
      Shard_store.close store;
      let store2, scan2 = Shard_store.open_store ~dir ~site:0 ~shards:4 () in
      Alcotest.(check int) "both keys recovered" 2 scan2.Shard_store.keys;
      Alcotest.(check int) "no torn shards" 0 scan2.Shard_store.torn_shards;
      Alcotest.(check int) "no corruption" 0 scan2.Shard_store.corrupt;
      (match Shard_store.lookup store2 "alpha" with
      | None -> Alcotest.fail "alpha lost"
      | Some s ->
          Alcotest.(check int) "alpha op_no" 4 s.Shard_store.op_no;
          Alcotest.(check int) "alpha version" 3 s.Shard_store.version;
          Alcotest.check set_testable "alpha partition" (ss [ 0; 1 ])
            s.Shard_store.partition;
          Alcotest.(check (option string)) "alpha value" (Some "v2")
            s.Shard_store.value);
      (match Shard_store.lookup store2 "beta" with
      | None -> Alcotest.fail "beta lost"
      | Some s ->
          Alcotest.(check (option string)) "beta has no value" None
            s.Shard_store.value);
      Alcotest.(check (option reject)) "unknown key stays unknown" None
        (Option.map ignore (Shard_store.lookup store2 "ghost"));
      let rids = scan2.Shard_store.rids in
      Alcotest.(check bool) "client 1 high-water from the log" true
        (List.mem (1, 6) rids);
      Alcotest.(check bool) "sidecar rids merged" true (List.mem (9, 77) rids);
      Alcotest.(check int) "read_states sees both keys" 2
        (List.length (Shard_store.read_states ~dir ~site:0));
      Shard_store.close store2)

let test_store_torn_tail () =
  with_scratch (fun dir ->
      let store, _ = Shard_store.open_store ~dir ~site:1 ~shards:1 () in
      for i = 0 to 9 do
        Shard_store.commit store
          ~key:(Printf.sprintf "t%d" i)
          ~rid:(mk_rid ~client:1 ~req:(i + 1))
          (st ~op_no:1 ~version:1 ~partition:u4 ~data_version:1
             ~value:(Some (string_of_int i)))
      done;
      Shard_store.close store;
      (* A crash tears the tail: a length prefix promising more bytes
         than the file holds. *)
      let path =
        Filename.concat (Shard_store.shards_dir ~dir ~site:1) "shard-0.dvl"
      in
      write_file path (read_file path ^ "\x20\x00\x00\x00AB");
      let store2, scan = Shard_store.open_store ~dir ~site:1 ~shards:1 () in
      Alcotest.(check int) "torn shard counted" 1 scan.Shard_store.torn_shards;
      Alcotest.(check int) "a torn tail is not bit rot" 0 scan.Shard_store.corrupt;
      Alcotest.(check int) "intact records all recovered" 10
        scan.Shard_store.keys;
      (match Shard_store.lookup store2 "t7" with
      | Some s ->
          Alcotest.(check (option string)) "state survives" (Some "7")
            s.Shard_store.value
      | None -> Alcotest.fail "t7 lost to the torn tail");
      Shard_store.close store2)

let test_store_midlog_corruption () =
  with_scratch (fun dir ->
      let store, _ = Shard_store.open_store ~dir ~site:0 ~shards:1 () in
      for i = 1 to 3 do
        Shard_store.commit store ~key:"c" ~rid:(mk_rid ~client:1 ~req:i)
          (st ~op_no:i ~version:i ~partition:u4 ~data_version:i
             ~value:(Some (Printf.sprintf "v%d" i)))
      done;
      Shard_store.close store;
      (* Rot a byte inside the first two records (key bytes, well past
         the length prefix): damage with an intact record after it. *)
      let path =
        Filename.concat (Shard_store.shards_dir ~dir ~site:0) "shard-0.dvl"
      in
      let raw = Bytes.of_string (read_file path) in
      let rec0_len = 4 + Int32.to_int (Bytes.get_int32_le raw 0) in
      let flip off =
        Bytes.set raw off (Char.chr (Char.code (Bytes.get raw off) lxor 0x01))
      in
      flip 15;
      flip (rec0_len + 15);
      write_file path (Bytes.to_string raw);
      let store2, scan = Shard_store.open_store ~dir ~site:0 ~shards:1 () in
      Alcotest.(check bool) "mid-log damage surfaced" true
        (scan.Shard_store.corrupt >= 1);
      (match Shard_store.lookup store2 "c" with
      | Some s ->
          Alcotest.(check (option string)) "intact tail record wins" (Some "v3")
            s.Shard_store.value
      | None -> Alcotest.fail "intact record after the damage was dropped");
      Shard_store.close store2)

let test_store_compaction () =
  with_scratch (fun dir ->
      let store, _ = Shard_store.open_store ~dir ~site:2 ~shards:1 () in
      let n = 1200 in
      for i = 1 to n do
        Shard_store.commit store ~key:"hot" ~rid:(mk_rid ~client:1 ~req:i)
          (st ~op_no:i ~version:i ~partition:u4 ~data_version:i
             ~value:(Some (if i = n then "last" else "v")))
      done;
      Alcotest.(check bool) "hot key triggered compaction" true
        (Shard_store.compactions store >= 1);
      Alcotest.(check bool) "superseded records dropped" true
        (Shard_store.log_records store < n);
      Shard_store.close store;
      let store2, scan = Shard_store.open_store ~dir ~site:2 ~shards:1 () in
      Alcotest.(check int) "one key" 1 scan.Shard_store.keys;
      Alcotest.(check int) "compacted log scans clean" 0 scan.Shard_store.corrupt;
      (match Shard_store.lookup store2 "hot" with
      | Some s ->
          Alcotest.(check int) "latest op_no survives" n s.Shard_store.op_no;
          Alcotest.(check (option string)) "latest value survives" (Some "last")
            s.Shard_store.value
      | None -> Alcotest.fail "hot key lost in compaction");
      (* Exactly-once memory must survive the rewrite: the rid summary
         record snapshots the applied-request table. *)
      Alcotest.(check bool) "rid high-water survives compaction" true
        (List.mem (1, n) scan.Shard_store.rids);
      Shard_store.close store2)

(* --- Shard_map ------------------------------------------------------- *)

let with_map ?(resident = 3) f =
  with_scratch (fun dir ->
      let store, _ = Shard_store.open_store ~dir ~site:0 ~shards:2 () in
      Fun.protect
        ~finally:(fun () -> Shard_store.close store)
        (fun () ->
          f (Shard_map.create ~store ~resident ~universe:u4 ())))

let test_map_lru () =
  with_map ~resident:3 (fun map ->
      for i = 0 to 5 do
        ignore (Shard_map.find map (Printf.sprintf "k%d" i))
      done;
      Alcotest.(check int) "residency bounded" 3 (Shard_map.resident map);
      Alcotest.(check int) "six cold misses" 6 (Shard_map.materializations map);
      Alcotest.(check int) "three evictions" 3 (Shard_map.evictions map);
      ignore (Shard_map.find map "k5");
      Alcotest.(check int) "resident hit is free" 6
        (Shard_map.materializations map);
      ignore (Shard_map.find map "k0");
      Alcotest.(check int) "evicted key re-materializes" 7
        (Shard_map.materializations map);
      let e = Shard_map.find map "k5" in
      Alcotest.(check string) "entry knows its key" "k5" (Shard_map.key e);
      Alcotest.(check int) "untouched key starts at the paper's state" 1
        (Replica.version (Shard_map.replica e));
      Shard_map.set_value e (Some "x");
      Shard_map.set_data_version e 5;
      let s = Shard_map.state_of e in
      Alcotest.(check (option string)) "state_of sees the value" (Some "x")
        s.Shard_store.value;
      Alcotest.(check int) "state_of sees the data version" 5
        s.Shard_store.data_version)

let test_map_pin () =
  with_map ~resident:2 (fun map ->
      let a = Shard_map.find map "a" in
      Shard_map.pin a;
      ignore (Shard_map.find map "b");
      ignore (Shard_map.find map "c");
      (* The cap forced an eviction, but never of the pinned entry: the
         same physical entry must come back (a parked coordinator cannot
         race a divergent twin of its key). *)
      Alcotest.(check bool) "pinned entry survives pressure" true
        (Shard_map.find map "a" == a);
      Alcotest.(check int) "no re-materialization of a" 3
        (Shard_map.materializations map);
      Shard_map.unpin a;
      expect_invalid "double unpin" (fun () -> Shard_map.unpin a);
      ignore (Shard_map.find map "d");
      ignore (Shard_map.find map "e");
      ignore (Shard_map.find map "a");
      Alcotest.(check int) "unpinned entry became evictable" 6
        (Shard_map.materializations map))

let test_map_validation () =
  with_scratch (fun dir ->
      let store, _ = Shard_store.open_store ~dir ~site:0 ~shards:1 () in
      Fun.protect
        ~finally:(fun () -> Shard_store.close store)
        (fun () ->
          expect_invalid "zero residency" (fun () ->
              Shard_map.create ~store ~resident:0 ~universe:u4 ())))

(* --- the keyed live protocol ----------------------------------------- *)

(* Fast timeouts, no fsync: kills here are socket severs.  [shards > 0]
   turns on the sharded object space. *)
let shard_config =
  {
    Node.gather_timeout = 0.05;
    retries = 1;
    backoff = 2.0;
    lock_lease = 1.0;
    lock_retries = 6;
    lock_backoff = 0.02;
    durable = false;
    clock = Dynvote_obs.Clock.now;
    pipeline = 1;
    max_reuse = 0;
    shards = 8;
    resident = 64;
  }

(* Durable persistence ON for the struck-coordinator regressions: they
   are about what the dead site's stable storage remembers. *)
let shard_crash_config =
  {
    Node.default_config with
    Node.gather_timeout = 0.05;
    lock_lease = 1.0;
    lock_retries = 6;
    lock_backoff = 0.02;
    shards = 8;
    resident = 64;
  }

let with_shard_cluster ?(config = shard_config) ?(client_timeout = 3.0) f =
  with_scratch (fun dir ->
      let cluster =
        Live.create ~config ~client_timeout ~universe:u4 ~dir ()
      in
      Fun.protect ~finally:(fun () -> Live.shutdown cluster) (fun () -> f cluster))

let check_status name expected (reply : Live.reply) =
  let s = function
    | Wire.Granted -> "granted"
    | Wire.Denied -> "denied"
    | Wire.Aborted -> "aborted"
    | Wire.Degraded -> "degraded"
  in
  Alcotest.(check string)
    (Printf.sprintf "%s (info: %s)" name reply.Live.info)
    (s expected) (s reply.Live.status)

let info_prefix prefix (reply : Live.reply) =
  String.length reply.Live.info >= String.length prefix
  && String.sub reply.Live.info 0 (String.length prefix) = prefix

let check_shard_audit name ?(min_keys = 1) cluster =
  let audit = Live.check cluster in
  Alcotest.(check bool)
    (Printf.sprintf "%s: audited >= %d keys (got %d)" name min_keys
       audit.Live.keys)
    true
    (audit.Live.keys >= min_keys);
  List.iter
    (fun (key, v) ->
      Alcotest.failf "%s: key %S: %a" name key Oracle.pp_violation v)
    audit.Live.kviolations;
  Alcotest.(check int) (name ^ ": no double applies") 0 audit.Live.dup_applies;
  List.iter
    (fun v -> Alcotest.failf "%s: %a" name Oracle.pp_violation v)
    (Oracle.violations audit.Live.oracle);
  audit

let test_live_multikey () =
  with_shard_cluster (fun cluster ->
      let c = Live.client cluster in
      check_status "write apple@0" Wire.Granted
        (Live.put c ~at:0 ~key:"apple" ~value:"1");
      check_status "write banana@1" Wire.Granted
        (Live.put c ~at:1 ~key:"banana" ~value:"2");
      check_status "write cherry@2" Wire.Granted
        (Live.put c ~at:2 ~key:"cherry" ~value:"3");
      let g = Live.get c ~at:3 ~key:"apple" in
      check_status "cross-site read" Wire.Granted g;
      Alcotest.(check (option string)) "apple fetched" (Some "1") g.Live.value;
      let g = Live.get c ~at:0 ~key:"banana" in
      Alcotest.(check (option string)) "banana fetched" (Some "2") g.Live.value;
      let g = Live.get c ~at:1 ~key:"ghost" in
      check_status "untouched key reads" Wire.Granted g;
      Alcotest.(check (option string)) "untouched key is empty" None
        g.Live.value;
      (* Keys vote independently: a minority segment is denied for every
         key, the majority side keeps writing. *)
      Live.partition cluster [ ss [ 0; 1; 2 ]; ss [ 3 ] ];
      check_status "minority write denied" Wire.Denied
        (Live.put c ~at:3 ~key:"apple" ~value:"x");
      check_status "minority read denied" Wire.Denied
        (Live.get c ~at:3 ~key:"banana");
      check_status "majority write lands" Wire.Granted
        (Live.put c ~at:0 ~key:"apple" ~value:"1b");
      Live.heal cluster;
      let g = Live.get c ~at:3 ~key:"apple" in
      check_status "healed minority reads" Wire.Granted g;
      Alcotest.(check (option string)) "healed site fetches the new value"
        (Some "1b") g.Live.value;
      (* Kill and restart: the shard logs are the site's memory; the
         next commit wave makes it fresh, no RECOVER involved. *)
      Live.kill cluster 2;
      check_status "3-of-4 write" Wire.Granted
        (Live.put c ~at:0 ~key:"durian" ~value:"4");
      Live.restart cluster 2;
      check_status "write reaches the restarted site" Wire.Granted
        (Live.put c ~at:0 ~key:"durian" ~value:"4b");
      let g = Live.get c ~at:2 ~key:"durian" in
      check_status "restarted site serves" Wire.Granted g;
      Alcotest.(check (option string)) "restarted site converged" (Some "4b")
        g.Live.value;
      ignore (check_shard_audit "multikey" ~min_keys:4 cluster))

let test_live_recover_refused () =
  with_shard_cluster (fun cluster ->
      let c = Live.client cluster in
      check_status "seed" Wire.Granted (Live.put c ~at:0 ~key:"a" ~value:"1");
      let r = Live.recover_site c 1 in
      check_status "RECOVER has no keyed meaning" Wire.Denied r;
      Alcotest.(check bool)
        (Printf.sprintf "says why (info: %s)" r.Live.info)
        true
        (info_prefix "recover:" r))

let test_live_amnesia () =
  with_shard_cluster (fun cluster ->
      let c = Live.client cluster in
      check_status "seed a" Wire.Granted (Live.put c ~at:0 ~key:"a" ~value:"1");
      check_status "seed b" Wire.Granted (Live.put c ~at:1 ~key:"b" ~value:"2");
      Live.kill cluster 1;
      (* The whole shard directory evaporates: the restarted site must
         know it knows nothing — a guessed ensemble could vote a stale
         partition into a quorum. *)
      rm_rf (Shard_store.shards_dir ~dir:(Live.dir cluster) ~site:1);
      Live.restart cluster 1;
      let r = Live.get c ~at:1 ~key:"a" in
      check_status "amnesiac site refuses to coordinate" Wire.Denied r;
      Alcotest.(check bool)
        (Printf.sprintf "denial names amnesia (info: %s)" r.Live.info)
        true
        (info_prefix "amnesiac:" r);
      check_status "amnesiac write refused too" Wire.Denied
        (Live.put c ~at:1 ~key:"c" ~value:"3");
      (* The surviving sites still form quorums without its vote. *)
      check_status "cluster keeps serving" Wire.Granted
        (Live.put c ~at:0 ~key:"a" ~value:"1b");
      let g = Live.get c ~at:2 ~key:"b" in
      Alcotest.(check (option string)) "reads stay correct" (Some "2")
        g.Live.value;
      ignore (check_shard_audit "amnesia" ~min_keys:2 cluster))

let test_live_exactly_once_retry () =
  with_shard_cluster ~config:shard_crash_config ~client_timeout:0.8
    (fun cluster ->
      let c = Live.client cluster in
      check_status "seed" Wire.Granted (Live.put c ~at:0 ~key:"a" ~value:"1");
      (* Kill coordinator 0 after its LAST commit send: the keyed write
         is fully applied everywhere, but the client never hears.  The
         ambiguous retry re-coordinates at another site under the same
         request number — the global (client, req) dedup table must
         acknowledge, not re-apply. *)
      Live.strike_after cluster 0 4;
      let r = Live.put ~retries:3 c ~at:0 ~key:"a" ~value:"2" in
      check_status "retry acknowledges the committed write" Wire.Granted r;
      Alcotest.(check bool) "at least one hop" true (r.Live.retries >= 1);
      Alcotest.(check bool)
        (Printf.sprintf "grant is a dedup ack (info: %s)" r.Live.info)
        true (info_prefix "duplicate" r);
      Live.restart cluster 0;
      let g = Live.get c ~at:2 ~key:"a" in
      Alcotest.(check (option string)) "applied once, value correct" (Some "2")
        g.Live.value;
      ignore (check_shard_audit "exactly-once" cluster))

let test_live_midwave_strike () =
  with_shard_cluster ~config:shard_crash_config ~client_timeout:0.8
    (fun cluster ->
      let c = Live.client cluster in
      check_status "seed" Wire.Granted (Live.put c ~at:0 ~key:"a" ~value:"1");
      (* Kill after the SECOND send: the coordinator and site 1 applied
         the new generation, sites {2, 3} never hear.  Only site 1 of
         the previous quorum {0, 1, 2, 3} now holds the max version, so
         the dynamic-voting rule keeps everyone blocked — the keyed
         engine must deny rather than fork the half-committed write. *)
      Live.strike_after cluster 0 2;
      let r = Live.put ~retries:3 c ~at:0 ~key:"a" ~value:"2" in
      check_status "survivors alone stay blocked" Wire.Denied r;
      Alcotest.(check bool) "at least one hop" true (r.Live.retries >= 1);
      Alcotest.(check bool)
        (Printf.sprintf "denied by the DV rule (info: %s)" r.Live.info)
        true (info_prefix "below majority" r);
      let g = Live.get c ~at:2 ~key:"a" in
      check_status "reads blocked too" Wire.Denied g;
      (* The restarted coordinator completes the picture: appliers
         {0, 1} make the 2-of-4 tie, and the lexicographic tie-break
         lets the half-committed generation win through. *)
      Live.restart cluster 0;
      let g = Live.get c ~at:2 ~key:"a" in
      check_status "restart unblocks the object" Wire.Granted g;
      Alcotest.(check (option string)) "maybe-committed write surfaced"
        (Some "2") g.Live.value;
      ignore (check_shard_audit "mid-wave strike" cluster))

(* --- group quorums under pipelining ---------------------------------- *)

let test_live_group_batching () =
  let config = { shard_config with pipeline = 8; max_reuse = 32 } in
  with_shard_cluster ~config (fun cluster ->
      let lg =
        {
          Loadgen.default with
          Loadgen.clients = 16;
          duration = 0.8;
          write_ratio = 0.3;
          keys = 64;
          seed = 7;
          sites = Some (ss [ 1 ]);
          mode = `Mux;
        }
      in
      let result = Loadgen.run cluster lg in
      Alcotest.(check bool) "load completed" true
        (result.Loadgen.reads.Loadgen.granted
         + result.Loadgen.writes.Loadgen.granted
         > 0);
      Alcotest.(check bool) "hot-set stats populated" true
        (result.Loadgen.hotset.Loadgen.distinct > 1);
      (* The point of the group path: one lock round covers the whole
         scheduler burst, so the mean group size must beat single-key. *)
      let m = (Live.obs cluster).Hub.metrics in
      let h = Metrics.histogram m "live.shard.group.batch" in
      Alcotest.(check bool) "group rounds happened" true
        (Metrics.histogram_count h > 0);
      Alcotest.(check bool)
        (Printf.sprintf "mean lock-round batch > 1 key (got %.2f)"
           (Metrics.histogram_mean h))
        true
        (Metrics.histogram_mean h > 1.0);
      ignore (check_shard_audit "group batching" ~min_keys:2 cluster))

(* --- opt-in soak ------------------------------------------------------ *)

(* DYNVOTE_SHARD_SOAK=1: a longer skewed run with a partition, a heal,
   and a kill/restart mid-history, audited per key at the end. *)
let test_shard_soak () =
  match Sys.getenv_opt "DYNVOTE_SHARD_SOAK" with
  | None -> ()
  | Some _ ->
      let config = { shard_config with pipeline = 4; max_reuse = 16 } in
      with_shard_cluster ~config (fun cluster ->
          let lg =
            {
              Loadgen.default with
              Loadgen.clients = 8;
              duration = 1.0;
              write_ratio = 0.4;
              keys = 512;
              zipf = 1.1;
              seed = 13;
              retries = 2;
            }
          in
          ignore (Loadgen.run cluster lg);
          Live.partition cluster [ ss [ 0; 1; 2 ]; ss [ 3 ] ];
          ignore (Loadgen.run cluster { lg with seed = 14 });
          Live.heal cluster;
          Live.kill cluster 2;
          ignore (Loadgen.run cluster { lg with seed = 15 });
          Live.restart cluster 2;
          ignore (Loadgen.run cluster { lg with seed = 16 });
          ignore (check_shard_audit "soak" ~min_keys:64 cluster))

let suite =
  [
    Alcotest.test_case "zipf: create validates its arguments" `Quick
      test_zipf_validation;
    Alcotest.test_case "zipf: mass is a distribution" `Quick test_zipf_mass;
    Alcotest.test_case "zipf: seeded sampling is deterministic" `Quick
      test_zipf_determinism;
    prop_zipf_sample_total;
    Alcotest.test_case "zipf: edge variates stay in range" `Quick
      test_zipf_sample_edge_variates;
    prop_zipf_mass_sums;
    Alcotest.test_case "zipf: single rank degenerates cleanly" `Quick
      test_zipf_single_rank;
    Alcotest.test_case "zipf: s=0 draws uniformly" `Quick test_zipf_uniform;
    Alcotest.test_case "zipf: skew concentrates on low ranks" `Quick
      test_zipf_slope;
    Alcotest.test_case "store: states and rids survive reopen" `Quick
      test_store_roundtrip;
    Alcotest.test_case "store: torn tail cut, intact records kept" `Quick
      test_store_torn_tail;
    Alcotest.test_case "store: mid-log damage surfaced" `Quick
      test_store_midlog_corruption;
    Alcotest.test_case "store: hot key compacts without forgetting" `Quick
      test_store_compaction;
    Alcotest.test_case "map: LRU bounds residency" `Quick test_map_lru;
    Alcotest.test_case "map: pinned entries never evicted" `Quick test_map_pin;
    Alcotest.test_case "map: cap validated" `Quick test_map_validation;
    Alcotest.test_case "live: keys vote independently" `Quick
      test_live_multikey;
    Alcotest.test_case "live: RECOVER refused in the sharded space" `Quick
      test_live_recover_refused;
    Alcotest.test_case "live: shard loss boots amnesiac" `Quick
      test_live_amnesia;
    Alcotest.test_case "live: struck coordinator dedups the retry" `Quick
      test_live_exactly_once_retry;
    Alcotest.test_case "live: mid-wave strike stays exactly-once" `Quick
      test_live_midwave_strike;
    Alcotest.test_case "live: group quorums batch under pipelining" `Quick
      test_live_group_batching;
    Alcotest.test_case "live: skewed soak (DYNVOTE_SHARD_SOAK=1)" `Slow
      test_shard_soak;
  ]
