(* Discrete-event engine: queue ordering, FIFO ties, engine semantics,
   trace ring buffer. *)

open Helpers
module Event_queue = Dynvote_des.Event_queue
module Engine = Dynvote_des.Engine
module Trace = Dynvote_des.Trace

let test_queue_ordering () =
  let q = Event_queue.create () in
  Event_queue.add q ~time:3.0 "c";
  Event_queue.add q ~time:1.0 "a";
  Event_queue.add q ~time:2.0 "b";
  Alcotest.(check (list (pair (float 0.0) string)))
    "chronological"
    [ (1.0, "a"); (2.0, "b"); (3.0, "c") ]
    (Event_queue.to_sorted_list q);
  Alcotest.(check int) "length" 3 (Event_queue.length q)

let test_queue_fifo_ties () =
  let q = Event_queue.create () in
  List.iteri (fun i name -> Event_queue.add q ~time:5.0 (i, name))
    [ "first"; "second"; "third" ];
  let order = List.map snd (List.map snd (Event_queue.to_sorted_list q)) in
  Alcotest.(check (list string)) "insertion order on ties"
    [ "first"; "second"; "third" ] order

let test_queue_pop () =
  let q = Event_queue.create () in
  Alcotest.(check bool) "empty pop" true (Event_queue.pop q = None);
  Event_queue.add q ~time:1.0 "x";
  Alcotest.(check bool) "peek" true (Event_queue.peek q = Some (1.0, "x"));
  Alcotest.(check bool) "pop" true (Event_queue.pop q = Some (1.0, "x"));
  Alcotest.(check bool) "empty again" true (Event_queue.is_empty q);
  Alcotest.check_raises "pop_exn empty" (Invalid_argument "Event_queue.pop_exn: empty queue")
    (fun () -> ignore (Event_queue.pop_exn q))

let test_queue_nan_rejected () =
  let q = Event_queue.create () in
  Alcotest.check_raises "nan time" (Invalid_argument "Event_queue.add: time is NaN")
    (fun () -> Event_queue.add q ~time:Float.nan "bad")

let test_queue_stress_sorted () =
  (* 10k random inserts pop out sorted. *)
  let rng = Dynvote_prng.Rng.create ~seed:77L () in
  let q = Event_queue.create () in
  for i = 1 to 10_000 do
    Event_queue.add q ~time:(Dynvote_prng.Rng.float rng *. 1000.0) i
  done;
  let last = ref neg_infinity in
  let count = ref 0 in
  let rec drain () =
    match Event_queue.pop q with
    | None -> ()
    | Some (t, _) ->
        if t < !last then Alcotest.failf "out of order: %f after %f" t !last;
        last := t;
        incr count;
        drain ()
  in
  drain ();
  Alcotest.(check int) "all drained" 10_000 !count

let test_engine_run () =
  let engine = Engine.create () in
  let seen = ref [] in
  Engine.schedule engine ~at:1.0 "a";
  Engine.schedule engine ~at:2.0 "b";
  Engine.schedule engine ~at:10.0 "late";
  Engine.run engine ~until:5.0 ~handler:(fun eng time payload ->
      seen := (time, payload) :: !seen;
      (* Handlers can schedule follow-ups. *)
      if payload = "a" then Engine.schedule_after eng ~delay:0.5 "a-child");
  Alcotest.(check (list (pair (float 0.0) string)))
    "processed in order, late event pending"
    [ (1.0, "a"); (1.5, "a-child"); (2.0, "b") ]
    (List.rev !seen);
  check_float "clock rests at until" 5.0 (Engine.now engine);
  Alcotest.(check int) "one event pending" 1 (Engine.pending engine)

let test_engine_stop () =
  let engine = Engine.create () in
  for i = 1 to 10 do
    Engine.schedule engine ~at:(float_of_int i) i
  done;
  let seen = ref 0 in
  Engine.run engine ~until:100.0 ~handler:(fun eng _ payload ->
      incr seen;
      if payload = 3 then Engine.stop eng);
  Alcotest.(check int) "stopped after three" 3 !seen;
  check_float "clock at stop point" 3.0 (Engine.now engine)

let test_engine_no_past_scheduling () =
  let engine = Engine.create () in
  Engine.schedule engine ~at:5.0 ();
  Engine.run engine ~until:5.0 ~handler:(fun eng _ () ->
      Alcotest.check_raises "past"
        (Invalid_argument "Engine.schedule: time 1 is before current time 5") (fun () ->
          Engine.schedule eng ~at:1.0 ()))

let test_engine_step_and_reset () =
  let engine = Engine.create () in
  Engine.schedule engine ~at:1.0 "x";
  Alcotest.(check (option (float 0.0))) "step" (Some 1.0)
    (Engine.step engine ~handler:(fun _ _ _ -> ()));
  Alcotest.(check (option (float 0.0))) "step empty" None
    (Engine.step engine ~handler:(fun _ _ _ -> ()));
  Alcotest.(check int) "handled" 1 (Engine.events_handled engine);
  Engine.reset engine;
  check_float "reset clock" 0.0 (Engine.now engine);
  Alcotest.(check int) "reset handled" 0 (Engine.events_handled engine)

let test_trace_ring () =
  let t = Trace.create ~capacity:3 () in
  List.iteri (fun i label -> Trace.record t ~time:(float_of_int i) label)
    [ "a"; "b"; "c"; "d"; "e" ];
  Alcotest.(check int) "recorded total" 5 (Trace.recorded t);
  Alcotest.(check (list string)) "keeps most recent, oldest first"
    [ "c"; "d"; "e" ]
    (List.map (fun e -> e.Trace.label) (Trace.entries t))

let test_trace_unbounded () =
  let t = Trace.create ~capacity:0 () in
  for i = 1 to 100 do
    Trace.recordf t ~time:(float_of_int i) "event %d" i
  done;
  Alcotest.(check int) "all kept" 100 (List.length (Trace.entries t));
  Alcotest.(check string) "formatted" "event 1"
    (List.hd (Trace.entries t)).Trace.label;
  Trace.clear t;
  Alcotest.(check int) "cleared" 0 (List.length (Trace.entries t))

let suite =
  [
    Alcotest.test_case "queue ordering" `Quick test_queue_ordering;
    Alcotest.test_case "queue FIFO on ties" `Quick test_queue_fifo_ties;
    Alcotest.test_case "queue pop/peek" `Quick test_queue_pop;
    Alcotest.test_case "queue rejects NaN" `Quick test_queue_nan_rejected;
    Alcotest.test_case "queue stress sorted" `Quick test_queue_stress_sorted;
    Alcotest.test_case "engine run" `Quick test_engine_run;
    Alcotest.test_case "engine stop" `Quick test_engine_stop;
    Alcotest.test_case "engine rejects past" `Quick test_engine_no_past_scheduling;
    Alcotest.test_case "engine step/reset" `Quick test_engine_step_and_reset;
    Alcotest.test_case "trace ring buffer" `Quick test_trace_ring;
    Alcotest.test_case "trace unbounded" `Quick test_trace_unbounded;
  ]
