(* The event-driven I/O layer, tested without timing or luck: frame
   reassembly under adversarial chunking through the Vio fake socket,
   EAGAIN/EINTR handling, write coalescing, the bounded-backpressure
   contract (a slow consumer is severed, never buffered without bound),
   deadline injection in Wire.recv, and the switchboard's stall reaper
   on a hand-cranked clock.  A second suite (serve-smoke) drives the
   real thing: >1024 concurrent connections through one broker loop and
   a pipelined coordinator holding several quorum rounds in flight. *)

open Helpers
module Wire = Dynvote_live.Wire
module Vio = Dynvote_live.Vio
module Evconn = Dynvote_live.Evconn
module Evloop = Dynvote_live.Evloop
module Switchboard = Dynvote_live.Switchboard
module Live = Dynvote_live.Cluster
module Loadgen = Dynvote_live.Loadgen
module Node = Dynvote_live.Node
module Hub = Dynvote_obs.Hub
module Metrics = Dynvote_obs.Metrics
module Trace = Dynvote_obs.Trace
module Manual = Dynvote_obs.Clock.Manual
module Oracle = Dynvote_chaos.Oracle

(* --- scratch directories -------------------------------------------- *)

let scratch_counter = ref 0

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let with_scratch f =
  incr scratch_counter;
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "dynvote-evloop-%d-%d" (Unix.getpid ()) !scratch_counter)
  in
  rm_rf dir;
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* --- fixtures -------------------------------------------------------- *)

let sample_envelopes : Wire.envelope list =
  [
    { Wire.src = 0; dst = Wire.broker_id; payload = Wire.Hello_client };
    { Wire.src = 3; dst = 70; payload = Wire.Welcome { id = 70 } };
    {
      Wire.src = 70;
      dst = 1;
      payload = Wire.Client_put { req = 1; key = "k"; value = String.make 200 'v' };
    };
    { Wire.src = 70; dst = 2; payload = Wire.Client_get { req = 2; key = "key two" } };
    {
      Wire.src = 1;
      dst = 70;
      payload =
        Wire.Client_reply { req = 2; status = Wire.Granted; value = Some "v"; info = "" };
    };
    { Wire.src = 2; dst = 1; payload = Wire.Unlock { op = 0x3_00_00_17 } };
  ]

let sample_stream =
  String.concat "" (List.map Wire.encode sample_envelopes)

(* Drain an Evconn until EOF, simulating one readiness event per call
   (a level-triggered loop re-signals leftover bytes). *)
let drive conn =
  let frames = ref [] and eof = ref false and iters = ref 0 in
  while (not !eof) && !iters < 100_000 do
    incr iters;
    let fs, status = Evconn.on_readable conn in
    List.iter (fun f -> frames := f :: !frames) fs;
    if status = `Eof then eof := true
  done;
  (List.rev !frames, !eof)

let oks frames =
  List.map
    (function Ok env -> env | Error e -> Alcotest.failf "decode error: %s" e)
    frames

(* --- frame reassembly under adversarial chunking --------------------- *)

(* Any way of splitting the byte stream — chunk boundaries anywhere,
   spurious wakeups and EINTR interleaved, a read(2) that returns as
   little as one byte — must reassemble exactly the original frames in
   order.  The chunk sizes and noise pattern are qcheck's to choose. *)
let prop_chunked_reassembly =
  qcheck_case ~count:300 ~name:"adversarial chunking reassembles exactly"
    QCheck.(pair (list_of_size Gen.(int_range 1 30) (int_range 1 50)) int)
    (fun (sizes, noise) ->
      let sizes = if sizes = [] then [ 7 ] else sizes in
      let noise = abs noise in
      (* Cut the stream into chunks, cycling through [sizes]. *)
      let script = ref [] and pos = ref 0 and i = ref 0 in
      let n = String.length sample_stream in
      while !pos < n do
        let size = min (List.nth sizes (!i mod List.length sizes)) (n - !pos) in
        script := Vio.Fake.Chunk (String.sub sample_stream !pos size) :: !script;
        (* Interleave spurious wakeups and interrupts from the noise bits. *)
        (match (noise lsr (!i mod 20)) land 3 with
        | 1 -> script := Vio.Fake.Again :: !script
        | 2 -> script := Vio.Fake.Intr :: !script
        | _ -> ());
        pos := !pos + size;
        incr i
      done;
      let script = List.rev (Vio.Fake.Eof :: !script) in
      let read_cap = if noise land 1 = 0 then max_int else 1 + (noise lsr 1) land 15 in
      let fake = Vio.Fake.create ~script ~read_cap () in
      let conn = Evconn.create (Vio.Fake.vio fake) in
      let frames, eof = drive conn in
      eof && oks frames = sample_envelopes)

let test_decoder_byte_by_byte () =
  let dec = Wire.Decoder.create () in
  let got = ref [] in
  String.iter
    (fun c ->
      Wire.Decoder.feed_string dec (String.make 1 c);
      let rec pull () =
        match Wire.Decoder.next dec with
        | Some (Ok env) ->
            got := env :: !got;
            pull ()
        | Some (Error e) -> Alcotest.failf "decode error: %s" e
        | None -> ()
      in
      pull ())
    sample_stream;
  Alcotest.(check bool) "all frames recovered" true
    (List.rev !got = sample_envelopes);
  Alcotest.(check int) "no residue" 0 (Wire.Decoder.buffered dec)

let test_spurious_wakeup () =
  let fake = Vio.Fake.create ~script:[ Vio.Fake.Again ] () in
  let conn = Evconn.create (Vio.Fake.vio fake) in
  let frames, status = Evconn.on_readable conn in
  Alcotest.(check bool) "no frames from a spurious wakeup" true (frames = []);
  Alcotest.(check bool) "connection stays open" true (status = `Open);
  Alcotest.(check int) "exactly one read attempted" 1 (Vio.Fake.reads fake);
  (* The bytes arrive later: the same connection picks them up. *)
  Vio.Fake.feed fake [ Vio.Fake.Chunk sample_stream; Vio.Fake.Eof ];
  let frames, eof = drive conn in
  Alcotest.(check bool) "frames after the real wakeup" true
    (eof && oks frames = sample_envelopes)

let test_eintr_read_retried () =
  (* EINTR is retried within the same readiness event, not treated as
     data or EOF. *)
  let env = List.hd sample_envelopes in
  let fake =
    Vio.Fake.create
      ~script:[ Vio.Fake.Intr; Vio.Fake.Chunk (Wire.encode env); Vio.Fake.Intr; Vio.Fake.Eof ]
      ()
  in
  let conn = Evconn.create (Vio.Fake.vio fake) in
  let frames, eof = drive conn in
  Alcotest.(check bool) "frame recovered through EINTR" true
    (eof && oks frames = [ env ])

let test_corrupt_stream_detected () =
  let good = Wire.encode (List.hd sample_envelopes) in
  let bad = Bytes.of_string (Wire.encode (List.nth sample_envelopes 2)) in
  (* Flip a payload byte: framing stays aligned, the checksum must not. *)
  let i = Bytes.length bad - 1 in
  Bytes.set bad i (Char.chr (Char.code (Bytes.get bad i) lxor 0x40));
  let fake =
    Vio.Fake.create
      ~script:[ Vio.Fake.Chunk (good ^ Bytes.to_string bad); Vio.Fake.Eof ]
      ()
  in
  let conn = Evconn.create (Vio.Fake.vio fake) in
  let frames, _ = drive conn in
  match frames with
  | [ Ok env; Error _ ] ->
      Alcotest.(check bool) "good frame precedes the corruption" true
        (env = List.hd sample_envelopes)
  | _ -> Alcotest.failf "expected [Ok; Error], got %d frames" (List.length frames)

(* --- write side: coalescing, short writes, EINTR --------------------- *)

let test_write_coalescing () =
  (* Frames enqueued while the peer is busy leave in one write call —
     the writev effect the outbound queue exists for. *)
  let fake = Vio.Fake.create ~write_credit:0 () in
  let conn = Evconn.create (Vio.Fake.vio fake) in
  List.iter
    (fun env ->
      Alcotest.(check bool) "enqueue accepted" true (Evconn.enqueue conn env = `Ok))
    sample_envelopes;
  Alcotest.(check bool) "blocked with zero credit" true (Evconn.flush conn = `Blocked);
  Alcotest.(check bool) "write interest wanted" true (Evconn.want_write conn);
  Alcotest.(check int) "all frames staged" (List.length sample_envelopes)
    (Evconn.queued_frames conn);
  Vio.Fake.grant fake max_int;
  let before = Vio.Fake.writes fake in
  Alcotest.(check bool) "drained" true (Evconn.flush conn = `Idle);
  Alcotest.(check int) "one write call carried every frame" 1
    (Vio.Fake.writes fake - before);
  Alcotest.(check int) "frames_out counts the batch" (List.length sample_envelopes)
    (Evconn.frames_out conn);
  Alcotest.(check bool) "the wire bytes are the frames, in order" true
    (Vio.Fake.written fake = sample_stream)

let test_short_writes_and_eintr () =
  (* A sink accepting 7 bytes at a time, with an EINTR thrown in: flush
     makes progress on every grant and the byte stream is unharmed. *)
  let fake = Vio.Fake.create ~write_credit:7 ~write_script:[ Vio.Fake.Intr ] () in
  let conn = Evconn.create (Vio.Fake.vio fake) in
  List.iter
    (fun env -> ignore (Evconn.enqueue conn env : [ `Ok | `Overflow ]))
    sample_envelopes;
  let guard = ref 0 in
  let rec pump () =
    incr guard;
    if !guard > 10_000 then Alcotest.fail "flush made no progress";
    match Evconn.flush conn with
    | `Idle -> ()
    | `Blocked ->
        Vio.Fake.grant fake 7;
        pump ()
    | `Closed -> Alcotest.fail "healthy sink reported closed"
  in
  pump ();
  Alcotest.(check bool) "short writes preserve the stream" true
    (Vio.Fake.written fake = sample_stream)

(* --- bounded backpressure -------------------------------------------- *)

let test_backpressure_overflow_severs () =
  (* The contract: a slow consumer's queue is bounded; past the bound
     the connection dies ([`Overflow], then [`Closed]) rather than the
     process buffering without limit or a frame silently vanishing. *)
  let max_queue = 2_000 in
  let fake = Vio.Fake.create ~write_credit:0 () in
  let conn = Evconn.create ~max_queue (Vio.Fake.vio fake) in
  let env = List.nth sample_envelopes 2 (* the 200-byte put *) in
  let overflowed = ref false and attempts = ref 0 in
  while (not !overflowed) && !attempts < 1_000 do
    incr attempts;
    (match Evconn.enqueue conn env with
    | `Ok -> ()
    | `Overflow -> overflowed := true);
    Alcotest.(check bool) "staged bytes never exceed the bound" true
      (Evconn.pending_bytes conn <= max_queue)
  done;
  Alcotest.(check bool) "a slow consumer eventually overflows" true !overflowed;
  Alcotest.(check bool) "the connection is poisoned" true
    (Evconn.flush conn = `Closed);
  Alcotest.(check bool) "later frames are refused, not dropped silently" true
    (Evconn.enqueue conn env = `Overflow);
  (* A fast peer on its own connection is unaffected. *)
  let fast = Vio.Fake.create () in
  let fconn = Evconn.create ~max_queue (Vio.Fake.vio fast) in
  Alcotest.(check bool) "fast peer accepts" true (Evconn.enqueue fconn env = `Ok);
  Alcotest.(check bool) "fast peer drains" true (Evconn.flush fconn = `Idle);
  Alcotest.(check bool) "fast peer got the frame" true
    (Vio.Fake.written fast = Wire.encode env)

let test_peer_gone_poisons () =
  let fake = Vio.Fake.create ~write_script:[ Vio.Fake.Eof ] () in
  let conn = Evconn.create (Vio.Fake.vio fake) in
  ignore (Evconn.enqueue conn (List.hd sample_envelopes) : [ `Ok | `Overflow ]);
  Alcotest.(check bool) "EPIPE closes the connection" true
    (Evconn.flush conn = `Closed);
  Alcotest.(check bool) "enqueue after the peer died overflows" true
    (Evconn.enqueue conn (List.hd sample_envelopes) = `Overflow)

(* --- Wire.recv deadlines on an injected clock ------------------------ *)

let test_recv_deadline_injected_clock () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () ->
      let conn = Wire.conn a in
      let clk = Manual.create () in
      let clock () = Manual.read clk in
      (* The deadline is a reading of the injected clock: with the clock
         already past it, recv times out immediately — no wall-clock wait,
         no dependence on the blocking-read path the rewrite removed. *)
      Manual.set clk 5.0;
      (match Wire.recv ~clock ~deadline:1.0 conn with
      | Error `Timeout -> ()
      | Ok _ | Error _ -> Alcotest.fail "expired deadline did not time out");
      (* With time before the deadline and a frame on the wire, recv
         delivers it. *)
      Manual.set clk 0.0;
      let env = List.hd sample_envelopes in
      Wire.send (Wire.conn b) env;
      match Wire.recv ~clock ~deadline:4.0 conn with
      | Ok got -> Alcotest.(check bool) "frame delivered" true (got = env)
      | Error _ -> Alcotest.fail "frame not delivered before deadline")

(* --- the switchboard's stall reaper on a hand-cranked clock ----------- *)

let test_stall_reaper_clock_step () =
  let clk = Manual.create () in
  let sb =
    Switchboard.create
      ~clock:(fun () -> Manual.read clk)
      ~stall_timeout:1.0 ~universe:(ss [ 0 ])
      ~segment_of:(fun s -> s)
      ()
  in
  Fun.protect
    ~finally:(fun () -> Switchboard.shutdown sb)
    (fun () ->
      let connect () =
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.connect fd
          (Unix.ADDR_INET (Unix.inet_addr_loopback, Switchboard.port sb));
        fd
      in
      let severed fd =
        (* Wait (real time, bounded) for the broker loop to act, then
           look for EOF. *)
        match Evloop.wait_fd fd ~read:true ~write:false ~timeout:5.0 with
        | None -> false
        | Some _ -> (
            match Unix.read fd (Bytes.create 64) 0 64 with
            | 0 -> true
            | _ -> false
            | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
                true)
      in
      (* A slow-loris client: says Hello, then opens a frame and stops
         feeding it. *)
      let loris = connect () in
      let wc = Wire.conn loris in
      Wire.send wc
        { Wire.src = 0; dst = Wire.broker_id; payload = Wire.Hello_client };
      (match Wire.recv ~deadline:(Dynvote_obs.Clock.now () +. 5.0) wc with
      | Ok { Wire.payload = Wire.Welcome _; _ } -> ()
      | _ -> Alcotest.fail "no welcome");
      let frame = Wire.encode { Wire.src = 0; dst = 0; payload = Wire.Hello_client } in
      let half = String.length frame / 2 in
      ignore (Unix.write_substring loris frame 0 half : int);
      (* A mute connection: never completes a Hello. *)
      let mute = connect () in
      (* Give the broker a real-time beat to read the partial frame, then
         step the injected clock past the stall budget.  Nothing here
         depends on how long the *wall* wait was. *)
      Unix.sleepf 0.2;
      Manual.set clk 10.0;
      Alcotest.(check bool) "half-fed frame reaped on the injected clock" true
        (severed loris);
      Alcotest.(check bool) "pre-hello connection reaped" true (severed mute);
      (try Unix.close loris with Unix.Unix_error _ -> ());
      try Unix.close mute with Unix.Unix_error _ -> ())

(* ===== serve-smoke: the real thing at scale ========================== *)

(* FD_SETSIZE is 1024; the readiness loop must not care.  Well over a
   thousand concurrent clients hold connections through one broker loop
   and every one of them completes a Hello/Welcome exchange. *)
let test_many_concurrent_connections () =
  let n = 1_200 in
  ignore (Evloop.raise_fd_limit ((2 * n) + 512) : int);
  let sb =
    Switchboard.create ~universe:(ss [ 0 ]) ~segment_of:(fun s -> s) ()
  in
  let socks = ref [] in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        !socks;
      Switchboard.shutdown sb)
    (fun () ->
      let ids = Hashtbl.create n in
      for i = 1 to n do
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        socks := fd :: !socks;
        Unix.connect fd
          (Unix.ADDR_INET (Unix.inet_addr_loopback, Switchboard.port sb));
        Unix.setsockopt fd Unix.TCP_NODELAY true;
        let conn = Wire.conn fd in
        Wire.send conn
          { Wire.src = 0; dst = Wire.broker_id; payload = Wire.Hello_client };
        match Wire.recv ~deadline:(Dynvote_obs.Clock.now () +. 10.0) conn with
        | Ok { Wire.payload = Wire.Welcome { id }; _ } ->
            if Hashtbl.mem ids id then
              Alcotest.failf "client id %d handed out twice" id;
            Hashtbl.replace ids id ()
        | Ok env ->
            Alcotest.failf "connection %d: expected Welcome, got %s" i
              (Wire.kind_name env.Wire.payload)
        | Error _ -> Alcotest.failf "connection %d of %d got no Welcome" i n
      done;
      (* Every connection is still open and registered: all n sockets
         held Welcomes concurrently, far past FD_SETSIZE. *)
      Alcotest.(check int) "distinct ids for every concurrent client" n
        (Hashtbl.length ids))

(* A pipelined coordinator must actually overlap quorum rounds: the
   trace ring records Round_start with the concurrent-round count, and
   the live.rounds.inflight histogram has the same fact in aggregate.
   Closed-loop mux clients all target one coordinator so admission can
   overlap; the audit at the end proves overlap cost no safety. *)
let test_pipelined_rounds_in_flight () =
  let pipelined_config =
    {
      Node.gather_timeout = 0.05;
      retries = 1;
      backoff = 2.0;
      lock_lease = 1.0;
      lock_retries = 6;
      lock_backoff = 0.02;
      durable = false;
      clock = Dynvote_obs.Clock.now;
      pipeline = 4;
      max_reuse = 16;
      shards = 0;
      resident = 4096;
    }
  in
  let found = ref false and attempts = ref 0 in
  while (not !found) && !attempts < 3 do
    incr attempts;
    with_scratch (fun dir ->
        let obs = Hub.create ~trace_capacity:65536 () in
        let cluster =
          Live.create ~config:pipelined_config ~obs ~client_timeout:3.0
            ~universe:(ss [ 0; 1; 2; 3 ]) ~dir ()
        in
        Fun.protect
          ~finally:(fun () -> Live.shutdown cluster)
          (fun () ->
            let r =
              Loadgen.run cluster
                {
                  Loadgen.default with
                  Loadgen.clients = 8;
                  duration = 0.5;
                  seed = 7 + !attempts;
                  mode = `Mux;
                  sites = Some (Site_set.singleton 0);
                }
            in
            let granted =
              r.Loadgen.reads.Loadgen.granted + r.Loadgen.writes.Loadgen.granted
            in
            let hist_max =
              Metrics.histogram_max
                (Metrics.histogram obs.Hub.metrics "live.rounds.inflight")
            in
            let trace_hit =
              List.exists
                (fun (_, e) ->
                  match e with
                  | Trace.Round_start { in_flight; _ } -> in_flight >= 2
                  | _ -> false)
                (Trace.recent obs.Hub.trace)
            in
            let audit = Live.check cluster in
            List.iter
              (fun v -> Alcotest.failf "pipelined run: %a" Oracle.pp_violation v)
              (Oracle.violations audit.Live.oracle);
            Alcotest.(check int) "no duplicate applies" 0 audit.Live.dup_applies;
            if granted > 0 && hist_max >= 2.0 && trace_hit then found := true))
  done;
  Alcotest.(check bool)
    "trace ring shows >= 2 quorum rounds in flight at the coordinator" true
    !found

let suite =
  [
    prop_chunked_reassembly;
    Alcotest.test_case "decoder, one byte at a time" `Quick test_decoder_byte_by_byte;
    Alcotest.test_case "spurious wakeup reads nothing" `Quick test_spurious_wakeup;
    Alcotest.test_case "EINTR on read retried" `Quick test_eintr_read_retried;
    Alcotest.test_case "corrupt stream detected in order" `Quick
      test_corrupt_stream_detected;
    Alcotest.test_case "writes coalesce into one call" `Quick test_write_coalescing;
    Alcotest.test_case "short writes and EINTR on write" `Quick
      test_short_writes_and_eintr;
    Alcotest.test_case "backpressure: overflow severs, bound holds" `Quick
      test_backpressure_overflow_severs;
    Alcotest.test_case "dead peer poisons the queue" `Quick test_peer_gone_poisons;
    Alcotest.test_case "recv deadline on an injected clock" `Quick
      test_recv_deadline_injected_clock;
    Alcotest.test_case "stall reaper fires on a clock step" `Quick
      test_stall_reaper_clock_step;
  ]

let serve_suite =
  [
    Alcotest.test_case "1200 concurrent connections" `Quick
      test_many_concurrent_connections;
    Alcotest.test_case "pipelined coordinator overlaps rounds" `Quick
      test_pipelined_rounds_in_flight;
  ]
