(* Metrics: indicator integration, warm-up, batches, outage accounting. *)

open Helpers
module Metrics = Dynvote_sim.Metrics

let test_basic_integration () =
  let m = Metrics.create ~warmup:0.0 ~batch_length:100.0 () in
  (* Available for 60, unavailable for 40. *)
  Metrics.advance m ~upto:60.0;
  Metrics.set_available m false;
  Metrics.advance m ~upto:100.0;
  check_float "unavailable time" 40.0 (Metrics.unavailable_time m);
  check_float "observed" 100.0 (Metrics.observed_time m);
  check_float_tol 1e-12 "unavailability" 0.4 (Metrics.unavailability m);
  Alcotest.(check int) "one outage" 1 (Metrics.outages m)

let test_warmup_discarded () =
  let m = Metrics.create ~warmup:50.0 ~batch_length:100.0 () in
  Metrics.set_available m false;
  Metrics.advance m ~upto:50.0;
  (* Everything so far was warm-up. *)
  check_float "no observed time" 0.0 (Metrics.observed_time m);
  Metrics.advance m ~upto:150.0;
  check_float "observed after warmup" 100.0 (Metrics.observed_time m);
  check_float "unavailable after warmup" 100.0 (Metrics.unavailable_time m)

let test_batch_boundaries () =
  let m = Metrics.create ~warmup:0.0 ~batch_length:10.0 () in
  (* Batch 1: unavailable 2 of 10; batch 2: 10 of 10; batch 3: 0. *)
  Metrics.advance m ~upto:8.0;
  Metrics.set_available m false;
  Metrics.advance m ~upto:20.0;
  Metrics.set_available m true;
  Metrics.advance m ~upto:30.0;
  let b = Metrics.batch_means m in
  Alcotest.(check int) "three batches" 3 (Dynvote_stats.Batch_means.batches b);
  Alcotest.(check (list (float 1e-12))) "per-batch unavailability" [ 0.2; 1.0; 0.0 ]
    (Dynvote_stats.Batch_means.observations b)

let test_one_advance_spanning_batches () =
  let m = Metrics.create ~warmup:0.0 ~batch_length:10.0 () in
  Metrics.set_available m false;
  (* A single advance across 5 batches must split correctly. *)
  Metrics.advance m ~upto:50.0;
  Alcotest.(check (list (float 1e-12))) "five full batches"
    [ 1.0; 1.0; 1.0; 1.0; 1.0 ]
    (Dynvote_stats.Batch_means.observations (Metrics.batch_means m))

let test_outage_durations () =
  let m = Metrics.create ~warmup:0.0 ~batch_length:1000.0 () in
  Metrics.advance m ~upto:10.0;
  Metrics.set_available m false;
  Metrics.advance m ~upto:14.0; (* 4-day outage *)
  Metrics.set_available m true;
  Metrics.advance m ~upto:50.0;
  Metrics.set_available m false;
  Metrics.advance m ~upto:52.0; (* 2-day outage *)
  Metrics.set_available m true;
  Metrics.finish m ~upto:100.0;
  Alcotest.(check int) "two outages" 2 (Metrics.outages m);
  check_float_tol 1e-12 "mean duration" 3.0 (Metrics.mean_outage_duration m);
  check_float "longest up" 48.0 (Metrics.longest_up m)

let test_no_outage_nan () =
  let m = Metrics.create ~warmup:0.0 ~batch_length:10.0 () in
  Metrics.finish m ~upto:100.0;
  Alcotest.(check bool) "mean duration nan" true (Float.is_nan (Metrics.mean_outage_duration m));
  check_float "longest up = whole run" 100.0 (Metrics.longest_up m);
  check_float "zero unavailability" 0.0 (Metrics.unavailability m)

let test_time_backwards_rejected () =
  let m = Metrics.create ~warmup:0.0 ~batch_length:10.0 () in
  Metrics.advance m ~upto:5.0;
  Alcotest.check_raises "backwards" (Invalid_argument "Metrics.advance: time going backwards")
    (fun () -> Metrics.advance m ~upto:4.0)

let test_outage_straddling_warmup () =
  (* An outage that starts inside warm-up: its post-warm-up time counts,
     and it is not counted as a started period. *)
  let m = Metrics.create ~warmup:10.0 ~batch_length:100.0 () in
  Metrics.advance m ~upto:5.0;
  Metrics.set_available m false;
  Metrics.advance m ~upto:20.0;
  Metrics.set_available m true;
  Metrics.finish m ~upto:110.0;
  check_float "post-warmup unavailable time" 10.0 (Metrics.unavailable_time m);
  Alcotest.(check int) "not counted as started" 0 (Metrics.outages m)

let test_outage_duration_stats () =
  let m = Metrics.create ~warmup:10.0 ~batch_length:100.0 () in
  (* One outage straddling the warm-up boundary: excluded from duration
     statistics (as from the period counter)... *)
  Metrics.advance m ~upto:5.0;
  Metrics.set_available m false;
  Metrics.advance m ~upto:15.0;
  Metrics.set_available m true;
  (* ...and two clean post-warm-up outages of 2 and 4 days. *)
  Metrics.advance m ~upto:20.0;
  Metrics.set_available m false;
  Metrics.advance m ~upto:22.0;
  Metrics.set_available m true;
  Metrics.advance m ~upto:30.0;
  Metrics.set_available m false;
  Metrics.advance m ~upto:34.0;
  Metrics.set_available m true;
  Metrics.finish m ~upto:110.0;
  let stats = Metrics.outage_duration_stats m in
  Alcotest.(check int) "two recorded durations" 2 (Dynvote_stats.Welford.count stats);
  check_float_tol 1e-12 "mean duration" 3.0 (Dynvote_stats.Welford.mean stats);
  check_float_tol 1e-12 "max duration" 4.0 (Dynvote_stats.Welford.max_value stats);
  Alcotest.(check int) "period counter agrees" 2 (Metrics.outages m)

let suite =
  [
    Alcotest.test_case "basic integration" `Quick test_basic_integration;
    Alcotest.test_case "warm-up discarded" `Quick test_warmup_discarded;
    Alcotest.test_case "batch boundaries" `Quick test_batch_boundaries;
    Alcotest.test_case "advance spanning batches" `Quick test_one_advance_spanning_batches;
    Alcotest.test_case "outage durations" `Quick test_outage_durations;
    Alcotest.test_case "no outage -> nan" `Quick test_no_outage_nan;
    Alcotest.test_case "time backwards rejected" `Quick test_time_backwards_rejected;
    Alcotest.test_case "outage straddling warm-up" `Quick test_outage_straddling_warmup;
    Alcotest.test_case "outage duration statistics" `Quick test_outage_duration_stats;
  ]
