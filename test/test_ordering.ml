(* Ordering: the lexicographic ranking used for tie-breaking. *)

open Helpers

let test_default () =
  let o = Ordering.default 4 in
  (* Site 0 ranks highest — the paper's "site 1 is the maximum". *)
  Alcotest.(check bool) "0 > 1" true (Ordering.greater o 0 1);
  Alcotest.(check bool) "1 > 3" true (Ordering.greater o 1 3);
  Alcotest.(check bool) "3 > 0 false" false (Ordering.greater o 3 0);
  Alcotest.(check int) "max of {1,2,3}" 1 (Ordering.max_element o (ss [ 1; 2; 3 ]));
  Alcotest.(check int) "max of {0,3}" 0 (Ordering.max_element o (ss [ 0; 3 ]))

let test_custom_ranking () =
  (* Ranking [2; 0; 1] means 2 > 0 > 1. *)
  let o = Ordering.of_ranking [ 2; 0; 1 ] in
  Alcotest.(check bool) "2 > 0" true (Ordering.greater o 2 0);
  Alcotest.(check bool) "0 > 1" true (Ordering.greater o 0 1);
  Alcotest.(check int) "max of {0,1}" 0 (Ordering.max_element o (ss [ 0; 1 ]));
  Alcotest.(check int) "max of {1,2}" 2 (Ordering.max_element o (ss [ 1; 2 ]))

let test_validation () =
  Alcotest.check_raises "duplicate" (Invalid_argument "Ordering.of_ranking: duplicate site")
    (fun () -> ignore (Ordering.of_ranking [ 0; 1; 0 ]));
  Alcotest.check_raises "empty" (Invalid_argument "Ordering.of_ranking: empty ranking")
    (fun () -> ignore (Ordering.of_ranking []));
  Alcotest.check_raises "unranked site"
    (Invalid_argument "Ordering.rank: site 5 not ranked") (fun () ->
      ignore (Ordering.rank (Ordering.default 3) 5));
  Alcotest.check_raises "max of empty" Not_found (fun () ->
      ignore (Ordering.max_element (Ordering.default 3) Site_set.empty))

let test_rank_values () =
  let o = Ordering.of_ranking [ 4; 2; 0 ] in
  Alcotest.(check bool) "rank decreases down the list" true
    (Ordering.rank o 4 > Ordering.rank o 2 && Ordering.rank o 2 > Ordering.rank o 0)

let prop_max_element_is_member =
  qcheck_case ~name:"max_element is a member with maximal rank"
    QCheck.(list_of_size (Gen.int_range 1 8) (int_bound 7))
    (fun sites ->
      let sites = List.sort_uniq compare sites in
      QCheck.assume (sites <> []);
      let o = Ordering.default 8 in
      let set = ss sites in
      let m = Ordering.max_element o set in
      Site_set.mem m set
      && Site_set.for_all (fun s -> s = m || Ordering.greater o m s) set)

let suite =
  [
    Alcotest.test_case "default ordering" `Quick test_default;
    Alcotest.test_case "custom ranking" `Quick test_custom_ranking;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "rank values" `Quick test_rank_values;
    prop_max_element_is_member;
  ]
