(* Differential layer: the message-level cluster (lib/msgsim) against a
   lockstep twin driven by the pure Operation semantics (lib/core).

   Both sides execute the same script.  The cluster runs every operation
   as real broadcast-gather-decide-commit message rounds; the twin calls
   Operation.{read,write,recover} directly on a replica array while
   mirroring the cluster's topology bookkeeping (up sites, declared
   partition groups, and the continuously-up-since-last-commit "fresh"
   set that gates topological vote claiming).  After every step the two
   must agree on the verdict, the granted bit, the up and fresh sets, and
   the full (operation number, version, partition) ensemble at every
   site.  Any divergence means the wire protocol and the paper's pure
   semantics have drifted apart.

   A last section cross-checks the MCV availability probe of the Policy
   layer against an independent majority computation over the cluster's
   live components. *)

open Helpers
module Cluster = Dynvote_msgsim.Cluster

(* --- The pure lockstep twin --- *)

module Twin = struct
  type t = {
    states : Replica.t array;
    ctx : Operation.ctx;
    universe : Site_set.t;
    mutable up : Site_set.t;
    mutable fresh : Site_set.t;
    mutable groups : Site_set.t list option;
  }

  let create ?flavor ?segment_of ~universe () =
    let n_sites = Site_set.max_elt universe + 1 in
    {
      states = Array.make n_sites (Replica.initial universe);
      ctx = Operation.make_ctx ?flavor ?segment_of (Ordering.default n_sites);
      universe;
      up = universe;
      fresh = universe;
      groups = None;
    }

  (* R as the cluster's gather sees it: the up sites of the requester's
     declared group (everything up when unpartitioned). *)
  let reachable t site =
    let component =
      match t.groups with
      | None -> t.universe
      | Some groups -> List.find (fun g -> Site_set.mem site g) groups
    in
    Site_set.inter component t.up

  let fail t site =
    t.up <- Site_set.remove site t.up;
    t.fresh <- Site_set.remove site t.fresh

  let partition t groups = t.groups <- Some groups
  let heal t = t.groups <- None

  (* A grant makes the commit recipients fresh again (they all just
     applied the new ensemble). *)
  let committed t recipients =
    t.fresh <- Site_set.union t.fresh (Site_set.inter recipients t.up)

  let read t ~at =
    let verdict =
      Operation.read t.ctx t.states ~fresh:t.fresh ~reachable:(reachable t at) ()
    in
    (match verdict with
    | Decision.Granted g -> committed t g.Decision.s
    | Decision.Denied _ -> ());
    verdict

  let write t ~at =
    let verdict =
      Operation.write t.ctx t.states ~fresh:t.fresh ~reachable:(reachable t at) ()
    in
    (match verdict with
    | Decision.Granted g -> committed t g.Decision.s
    | Decision.Denied _ -> ());
    verdict

  let recover t ~site =
    t.up <- Site_set.add site t.up;
    let verdict =
      Operation.recover t.ctx t.states ~fresh:t.fresh ~site
        ~reachable:(reachable t site) ()
    in
    (match verdict with
    | Decision.Granted g -> committed t (Site_set.add site g.Decision.s)
    | Decision.Denied _ -> ());
    verdict
end

(* --- Lockstep driver --- *)

type step =
  | Fail of Site_set.site
  | Recover of Site_set.site
  | Write of Site_set.site
  | Read of Site_set.site
  | Partition of Site_set.t list
  | Heal

let verdict_equal a b =
  match (a, b) with
  | Decision.Granted x, Decision.Granted y ->
      x.Decision.m = y.Decision.m
      && Site_set.equal x.Decision.q y.Decision.q
      && Site_set.equal x.Decision.s y.Decision.s
      && Site_set.equal x.Decision.p_m y.Decision.p_m
      && Site_set.equal x.Decision.claimed y.Decision.claimed
  | Decision.Denied x, Decision.Denied y -> x = y
  | _ -> false

type pair = { cluster : Cluster.t; twin : Twin.t; mutable writes : int }

let make_pair ?flavor ?segment_of universe =
  {
    cluster = Cluster.create ?flavor ?segment_of ~universe ~initial_content:"g0" ();
    twin = Twin.create ?flavor ?segment_of ~universe ();
    writes = 0;
  }

(* Execute one step on both sides; return the agreed granted bit (or None
   for pure topology steps), raising on any disagreement. *)
let lockstep p step =
  let op =
    match step with
    | Fail site ->
        Cluster.fail p.cluster site;
        Twin.fail p.twin site;
        None
    | Partition groups ->
        Cluster.partition p.cluster groups;
        Twin.partition p.twin groups;
        None
    | Heal ->
        Cluster.heal p.cluster;
        Twin.heal p.twin;
        None
    | Recover site ->
        Some (Cluster.recover p.cluster ~site, Twin.recover p.twin ~site)
    | Write site ->
        p.writes <- p.writes + 1;
        let content = Printf.sprintf "w%d" p.writes in
        Some (Cluster.write p.cluster ~at:site ~content, Twin.write p.twin ~at:site)
    | Read site -> Some (Cluster.read p.cluster ~at:site, Twin.read p.twin ~at:site)
  in
  let granted =
    match op with
    | None -> None
    | Some (outcome, twin_verdict) ->
        if not (verdict_equal outcome.Cluster.verdict twin_verdict) then
          Alcotest.failf "verdicts diverge: cluster %a, twin %a" Decision.pp_verdict
            outcome.Cluster.verdict Decision.pp_verdict twin_verdict;
        (* Quiet delivery, no injected faults: granted iff the decision
           granted. *)
        Alcotest.(check bool) "granted bit" outcome.Cluster.granted
          (Decision.is_granted twin_verdict);
        Some outcome.Cluster.granted
  in
  Alcotest.check set_testable "up sets agree" p.twin.Twin.up
    (Cluster.up_sites p.cluster);
  Alcotest.check set_testable "fresh sets agree" p.twin.Twin.fresh
    (Cluster.fresh_sites p.cluster);
  let wire = Cluster.replica_states p.cluster in
  Site_set.iter
    (fun site ->
      Alcotest.check replica_testable
        (Printf.sprintf "site %d ensembles agree" site)
        p.twin.Twin.states.(site) wire.(site))
    p.twin.Twin.universe;
  granted

let run_lockstep p steps = List.iter (fun step -> ignore (lockstep p step)) steps

let expect name expected p step =
  match lockstep p step with
  | Some granted -> Alcotest.(check bool) name expected granted
  | None -> Alcotest.fail (name ^ ": step produced no verdict")

(* --- Deterministic scenarios --- *)

let universe4 = ss [ 0; 1; 2; 3 ]
let segment_of4 site = site / 2

(* The paper's four-site, two-segment block through partitions, an even
   split (where the lexicographic tie-break decides), failures and
   recoveries — checked ensemble-by-ensemble at every step. *)
let test_partition_scenario () =
  List.iter
    (fun flavor ->
      let p = make_pair ~flavor ~segment_of:segment_of4 universe4 in
      expect "initial write" true p (Write 0);
      run_lockstep p [ Partition [ ss [ 0; 1 ]; ss [ 2; 3 ] ] ];
      (* An even split of the quorum {0,1,2,3}: only the tie-breaking
         flavors may proceed, and only on the side ranking highest. *)
      let tie = flavor.Decision.tie_break in
      expect "majority-side write" tie p (Write 0);
      expect "minority side denied" false p (Read 2);
      run_lockstep p [ Heal ];
      expect "healed read" true p (Read 2);
      expect "stale site reintegrates" true p (Recover 2);
      run_lockstep p [ Fail 3 ];
      expect "3-of-4 write" true p (Write 1);
      expect "failed site recovers" true p (Recover 3);
      expect "final read" true p (Read 3))
    [ Decision.dv_flavor; Decision.ldv_flavor; Decision.tdv_safe_flavor ]

(* The published-TDV counterexample, replayed differentially: both sides
   must agree that TDV as published grants the stale site's recovery (the
   split-brain) and that the freshness correction refuses it. *)
let universe2 = ss [ 0; 1 ]

let test_tdv_hole_lockstep () =
  let run flavor =
    let p = make_pair ~flavor ~segment_of:(fun _ -> 0) universe2 in
    run_lockstep p [ Fail 1 ];
    expect "survivor claims the dead vote" true p (Write 0);
    run_lockstep p [ Fail 0 ];
    p
  in
  let tdv = run Decision.tdv_flavor in
  expect "published tdv resurrects the stale site" true tdv (Recover 1);
  let safe = run Decision.tdv_safe_flavor in
  expect "freshness condition refuses the stale claim" false safe (Recover 1)

(* --- Randomized lockstep equivalence --- *)

(* Decode a script code exactly like the msgsim random-history test:
   site = cmd mod n, action = cmd / n mod 4 (fail / recover / write /
   read), skipping operations whose requester is in the wrong state. *)
let decode_simple n_sites up cmd =
  let site = cmd mod n_sites in
  match cmd / n_sites mod 4 with
  | 0 -> Some (Fail site)
  | 1 -> if Site_set.mem site up then None else Some (Recover site)
  | 2 -> if Site_set.mem site up then Some (Write site) else None
  | _ -> if Site_set.mem site up then Some (Read site) else None

let run_script p decode script =
  List.iter
    (fun cmd ->
      match decode (Cluster.up_sites p.cluster) cmd with
      | Some step -> ignore (lockstep p step)
      | None -> ())
    script;
  true

let prop_lockstep name flavor =
  qcheck_case ~count:100 ~name Generators.cluster_script (fun script ->
      let p = make_pair ~flavor ~segment_of:(fun site -> site / 2) (ss [ 0; 1; 2 ]) in
      run_script p (decode_simple 3) script)

(* Four sites, two segments, with partitions and heals in the action
   alphabet — the §3 topology under random histories. *)
let splits4 =
  [|
    [ ss [ 0 ]; ss [ 1; 2; 3 ] ];
    [ ss [ 0; 1 ]; ss [ 2; 3 ] ];
    [ ss [ 0; 1; 2 ]; ss [ 3 ] ];
  |]

let decode_partition up cmd =
  let site = cmd mod 4 in
  match cmd / 4 mod 6 with
  | 0 -> Some (Fail site)
  | 1 -> if Site_set.mem site up then None else Some (Recover site)
  | 2 -> if Site_set.mem site up then Some (Write site) else None
  | 3 -> if Site_set.mem site up then Some (Read site) else None
  | 4 -> Some (Partition splits4.(site mod 3))
  | _ -> Some Heal

let prop_lockstep_partitions name flavor =
  qcheck_case ~count:100 ~name Generators.partition_script (fun script ->
      let p = make_pair ~flavor ~segment_of:segment_of4 universe4 in
      run_script p decode_partition script)

(* --- Multi-object histories --- *)

(* The sharded object space's semantics, differentially: every key is an
   independent register — its own (o, v, P) ensemble, its own quorums —
   while failures, partitions and recoveries hit the shared sites.  One
   (cluster, twin) pair per key, topology steps applied to all pairs in
   lockstep, operations routed to their key's pair: each pair re-checks
   cluster-vs-twin agreement at every step, and a final sweep checks
   that untouched keys never moved. *)

let keyed_lockstep pairs steps =
  List.iter
    (fun (key, step) ->
      match step with
      | Write _ | Read _ -> ignore (lockstep pairs.(key) step)
      | Fail _ | Recover _ | Partition _ | Heal ->
          Array.iter (fun p -> ignore (lockstep p step)) pairs)
    steps

let test_multiobject_scenario () =
  let pairs =
    Array.init 4 (fun _ ->
        make_pair ~flavor:Decision.dv_flavor ~segment_of:segment_of4 universe4)
  in
  keyed_lockstep pairs
    [
      (0, Write 0);
      (1, Write 1);
      (0, Write 2);
      (2, Read 3);
      (0, Partition [ ss [ 0; 1 ]; ss [ 2; 3 ] ]);
      (* the even split denies plain DV for every key, touched or not *)
      (0, Read 0);
      (1, Read 2);
      (0, Heal);
      (0, Read 2);
      (1, Write 3);
      (2, Write 0);
    ];
  (* Versions move with each key's own writes — never a neighbour's. *)
  let version k = Replica.version (Cluster.replica_states pairs.(k).cluster).(0) in
  Alcotest.(check int) "key 0: two granted writes" 3 (version 0);
  Alcotest.(check int) "key 1: two granted writes" 3 (version 1);
  Alcotest.(check int) "key 2: one granted write" 2 (version 2);
  Alcotest.(check int) "untouched key never moved" 1 (version 3)

let prop_multiobject name flavor =
  qcheck_case ~count:60 ~name Generators.partition_script (fun script ->
      let pairs =
        Array.init 3 (fun _ -> make_pair ~flavor ~segment_of:segment_of4 universe4)
      in
      List.iter
        (fun cmd ->
          let key = cmd / 24 mod 3 in
          (* All pairs share one topology, so pair 0's up set speaks for
             the decode guard. *)
          match decode_partition (Cluster.up_sites pairs.(0).cluster) cmd with
          | None -> ()
          | Some ((Write _ | Read _) as step) -> ignore (lockstep pairs.(key) step)
          | Some step -> Array.iter (fun p -> ignore (lockstep p step)) pairs)
        script;
      true)

(* --- MCV availability vs. the Policy probe --- *)

(* MCV is stateless, so the cluster has no wire implementation to race;
   instead the Policy probe is checked against an independent majority
   computation over the cluster's live components as a random
   fail/recover history unfolds. *)
let prop_mcv_availability =
  qcheck_case ~count:100 ~name:"mcv probe = majority of live components"
    Generators.cluster_script (fun script ->
      let universe = ss [ 0; 1; 2 ] in
      let c = Cluster.create ~universe () in
      let policy =
        Policy.create Policy.Mcv ~universe ~n_sites:3 ~segment_of:(fun _ -> 0)
          ~ordering:(Ordering.default 3)
      in
      let total = Site_set.cardinal universe in
      let top = Ordering.max_element (Ordering.default 3) universe in
      List.iter
        (fun cmd ->
          let site = cmd mod 3 in
          (match cmd / 3 mod 4 with
          | 0 -> Cluster.fail c site
          | 1 ->
              if not (Site_set.mem site (Cluster.up_sites c)) then
                ignore (Cluster.recover c ~site)
          | _ -> ());
          let components = Cluster.components c in
          let view = { Policy.components } in
          let expected =
            List.exists
              (fun component ->
                let have = Site_set.cardinal (Site_set.inter component universe) in
                (2 * have > total) || (2 * have = total && Site_set.mem top component))
              components
          in
          if Policy.is_available policy view <> expected then
            QCheck.Test.fail_reportf "mcv probe diverges on %a"
              Fmt.(Dump.list Site_set.pp)
              components)
        script;
      true)

let suite =
  [
    Alcotest.test_case "partition scenario stays in lockstep" `Quick
      test_partition_scenario;
    Alcotest.test_case "tdv hole replays differentially" `Quick
      test_tdv_hole_lockstep;
    prop_lockstep "dv: random histories stay in lockstep" Decision.dv_flavor;
    prop_lockstep "ldv/odv: random histories stay in lockstep" Decision.ldv_flavor;
    prop_lockstep "tdv: random histories stay in lockstep" Decision.tdv_flavor;
    prop_lockstep "tdv-safe: random histories stay in lockstep"
      Decision.tdv_safe_flavor;
    prop_lockstep_partitions "dv: partitioned histories stay in lockstep"
      Decision.dv_flavor;
    prop_lockstep_partitions "tdv-safe: partitioned histories stay in lockstep"
      Decision.tdv_safe_flavor;
    Alcotest.test_case "multi-object: keys vote independently" `Quick
      test_multiobject_scenario;
    prop_multiobject "dv: multi-object histories stay in lockstep"
      Decision.dv_flavor;
    prop_multiobject "tdv-safe: multi-object histories stay in lockstep"
      Decision.tdv_safe_flavor;
    prop_mcv_availability;
  ]
