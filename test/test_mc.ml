(* Bounded model checker: the published-TDV hole is found as a
   minimum-length counterexample that replays verbatim in the chaos
   harness; the corrected flavors exhaust small scopes clean; the search
   is deterministic; symmetry reduction only shrinks the state count.
   Set DYNVOTE_MC_DEPTH to also sweep the paper's four-copy example at a
   chosen bound (the cram test covers depth 8 of that scope). *)

module Checker = Dynvote_mc.Checker
module Explorer = Dynvote_mc.Explorer
module Space = Dynvote_mc.Space
module Striped_seen = Dynvote_mc.Striped_seen
module Harness = Dynvote_chaos.Harness

let policy name =
  match Harness.policy_of_string name with
  | Some p -> p
  | None -> Alcotest.failf "no policy %S" name

(* Two sites on one segment: the smallest scope exhibiting the hole. *)
let two_sites flavor =
  Checker.make_config ~flavor ~universe:(Site_set.of_list [ 0; 1 ])
    ~segment_of:(fun _ -> 0) ()

let config_for p = two_sites p.Harness.flavor

let test_tdv_hole_found () =
  let p = policy "tdv" in
  let report = Checker.check ~policy:p ~depth:5 (config_for p) in
  (match report.Checker.verdict with
  | Checker.Counterexample { schedule; violations; replay_matches; _ } ->
      Alcotest.(check bool) "replays identically in the harness" true
        replay_matches;
      Alcotest.(check bool) "at most five steps" true
        (List.length schedule.Dynvote_chaos.Schedule.steps <= 5);
      Alcotest.(check bool) "a violation is reported" true (violations <> [])
  | Checker.Clean _ -> Alcotest.fail "tdv hole not found at depth 5"
  | Checker.Inconclusive -> Alcotest.fail "state budget exhausted");
  Alcotest.(check bool) "counterexample on an expected-unsafe policy is ok" true
    (Checker.verdict_ok report)

let test_safe_policies_clean () =
  List.iter
    (fun name ->
      let p = policy name in
      let report = Checker.check ~policy:p ~depth:6 (config_for p) in
      (match report.Checker.verdict with
      | Checker.Clean _ -> ()
      | Checker.Counterexample { violations; _ } ->
          Alcotest.failf "%s unsafe: %a" name
            Fmt.(Dump.list Dynvote_chaos.Oracle.pp_violation)
            violations
      | Checker.Inconclusive -> Alcotest.failf "%s: budget exhausted" name);
      Alcotest.(check bool) (name ^ " verdict ok") true (Checker.verdict_ok report))
    [ "dv"; "odv"; "tdv-safe" ]

let test_deterministic () =
  let run () =
    Explorer.search ~config:(two_sites Decision.ldv_flavor) ~depth:5 ()
  in
  Alcotest.(check bool) "two searches, identical results" true (run () = run ())

(* Relabeling sites within a segment must never change the verdict, only
   fold equivalent states: same outcome, no larger seen table. *)
let test_symmetry_sound () =
  let config = Checker.paper_config ~flavor:Decision.dv_flavor () in
  let folded = Explorer.search ~symmetry:true ~config ~depth:4 () in
  let plain = Explorer.search ~symmetry:false ~config ~depth:4 () in
  (match (folded.Explorer.outcome, plain.Explorer.outcome) with
  | Explorer.Safe _, Explorer.Safe _ -> ()
  | _ -> Alcotest.fail "dv must be safe at depth 4 with and without symmetry");
  Alcotest.(check bool) "symmetry never grows the state count" true
    (folded.Explorer.distinct <= plain.Explorer.distinct);
  Alcotest.(check bool) "symmetry actually folds states" true
    (folded.Explorer.distinct < plain.Explorer.distinct)

let test_budget_exhaustion () =
  let result =
    Explorer.search ~max_states:50 ~config:(two_sites Decision.dv_flavor)
      ~depth:8 ()
  in
  match result.Explorer.outcome with
  | Explorer.Out_of_budget -> ()
  | _ -> Alcotest.fail "a 50-state budget cannot cover depth 8"

(* Regression: the distinct-state counter must move only on admission.
   The old per-shard tables bumped it on the Budget path too, so under
   contention the reported count drifted past max_states.  Exhaust a
   tiny budget from four workers and demand exact accounting (the
   explorer additionally asserts [length = distinct] internally). *)
let test_budget_no_drift_parallel () =
  let result =
    Explorer.search ~jobs:4 ~max_states:100
      ~config:(Checker.paper_config ~flavor:Decision.tdv_safe_flavor ())
      ~depth:6 ()
  in
  (match result.Explorer.outcome with
  | Explorer.Out_of_budget -> ()
  | _ -> Alcotest.fail "a 100-state budget cannot cover the paper scope");
  Alcotest.(check int) "exactly max_states admitted, none past the cap" 100
    result.Explorer.distinct

(* The partial-order reduction soundness gate: reduced and full
   exploration must produce identical verdicts, counterexample lengths
   and distinct-state counts on a completed bound — at small depth, for
   every distinct policy, sequentially and under a 4-worker pool.  This
   is the empirical half of the commutation proof in lib/mc/por.ml. *)
let test_por_equivalence () =
  (* Equally short counterexamples are interchangeable: the reduction
     (and worker scheduling) may pick a different representative, so a
     violation compares by length and kind, not by its site details. *)
  let kind = function
    | Dynvote_chaos.Oracle.Generation_conflict _ -> "generation"
    | Dynvote_chaos.Oracle.Non_monotone_op _ -> "op"
    | Dynvote_chaos.Oracle.Version_regression _ -> "version"
    | Dynvote_chaos.Oracle.Stale_read _ -> "read"
    | Dynvote_chaos.Oracle.Content_fork _ -> "fork"
  in
  let summary (r : Explorer.result) =
    match r.Explorer.outcome with
    | Explorer.Safe { closed } -> `Safe (closed, r.Explorer.distinct)
    | Explorer.Violation { trace; violations } ->
        `Violation (List.length trace, List.sort compare (List.map kind violations))
    | Explorer.Out_of_budget -> `Out_of_budget
  in
  List.iter
    (fun name ->
      let p = policy name in
      let config =
        {
          (Checker.paper_config ()) with
          Harness.flavor = p.Harness.flavor;
        }
      in
      let run ~por ~jobs = Explorer.search ~por ~jobs ~config ~depth:5 () in
      let full = summary (run ~por:false ~jobs:1) in
      List.iter
        (fun jobs ->
          let reduced = summary (run ~por:true ~jobs) in
          if reduced <> full then
            Alcotest.failf "%s (-j%d): reduced and full verdicts differ" name jobs)
        [ 1; 4 ];
      (* Transitions must never grow on the policy's own search. *)
      let t_full = (run ~por:false ~jobs:1).Explorer.transitions in
      let t_red = (run ~por:true ~jobs:1).Explorer.transitions in
      Alcotest.(check bool)
        (name ^ ": reduction does not add transitions")
        true (t_red <= t_full))
    [ "dv"; "odv"; "tdv"; "tdv-safe" ]

(* The fingerprint store in isolation: admission caps, the
   context-tagged transposition rule, and the spill tier. *)
let test_seen_store_claim () =
  let t = Striped_seen.create ~shards:1 ~max_states:3 () in
  let fp i = Printf.sprintf "state-%d" i in
  (* Admission: exactly max_states distinct fingerprints, then Budget —
     and the bounced state is never counted. *)
  for i = 1 to 3 do
    match Striped_seen.claim t (fp i) ~budget:4 ~ctx:0 with
    | Striped_seen.Expand { filter; covered } ->
        Alcotest.(check int) "fresh expansion under own ctx" 0 filter;
        Alcotest.(check int) "fresh expansion is full" 0 covered
    | _ -> Alcotest.failf "state %d should admit" i
  done;
  (match Striped_seen.claim t (fp 4) ~budget:4 ~ctx:0 with
  | Striped_seen.Budget -> ()
  | _ -> Alcotest.fail "4th state must bounce");
  Alcotest.(check int) "bounced state not counted" 3 (Striped_seen.distinct t);
  Alcotest.(check int) "length = distinct" 3 (Striped_seen.length t);
  (* Transposition: smaller budget prunes, larger re-expands. *)
  (match Striped_seen.claim t (fp 1) ~budget:2 ~ctx:0 with
  | Striped_seen.Prune -> ()
  | _ -> Alcotest.fail "covered revisit must prune");
  (match Striped_seen.claim t (fp 1) ~budget:6 ~ctx:0 with
  | Striped_seen.Expand { covered = 0; _ } -> ()
  | _ -> Alcotest.fail "deeper revisit must re-expand in full");
  Alcotest.(check int) "revisits never recount" 3 (Striped_seen.distinct t);
  Striped_seen.close t;
  (* Context conflict at a covered budget: only the difference, and the
     new statement joins the stored pair. *)
  let t = Striped_seen.create ~shards:1 ~max_states:10 () in
  let ctx_a = 0x1_0001 and ctx_b = 0x1_0002 in
  (match Striped_seen.claim t "conflicted" ~budget:4 ~ctx:ctx_a with
  | Striped_seen.Expand { filter; covered } ->
      Alcotest.(check int) "fresh: filter is the incoming ctx" ctx_a filter;
      Alcotest.(check int) "fresh: full expansion" 0 covered
  | _ -> Alcotest.fail "fresh state admits");
  (match Striped_seen.claim t "conflicted" ~budget:4 ~ctx:ctx_b with
  | Striped_seen.Expand { filter; covered } ->
      Alcotest.(check int) "conflict: filter is our ctx" ctx_b filter;
      Alcotest.(check int) "conflict: difference against the stored ctx" ctx_a
        covered
  | _ -> Alcotest.fail "conflicting ctx at covered budget expands difference");
  (match Striped_seen.claim t "conflicted" ~budget:4 ~ctx:ctx_b with
  | Striped_seen.Prune -> ()
  | _ -> Alcotest.fail "joined statement must prune the repeat");
  (match Striped_seen.claim t "conflicted" ~budget:3 ~ctx:0 with
  | Striped_seen.Expand { filter = 0; covered } ->
      Alcotest.(check bool) "unfiltered arrival diffs against a stored ctx" true
        (covered = ctx_a || covered = ctx_b)
  | _ -> Alcotest.fail "unfiltered arrival under covered budget diffs");
  Striped_seen.close t

(* Spilling moves entries to disk without changing a single answer:
   replay one deterministic claim sequence against a resident-only store
   and a spill-at-16 store and demand identical verdicts throughout. *)
let test_seen_store_spill_equivalence () =
  let resident = Striped_seen.create ~shards:1 ~max_states:10_000 () in
  let spilly = Striped_seen.create ~shards:1 ~spill:16 ~max_states:10_000 () in
  let mix i = (i * 2654435761) land 0xfff in
  for i = 0 to 2_000 do
    let fp = Printf.sprintf "s-%d" (mix i) in
    let budget = i mod 7 and ctx = if i mod 3 = 0 then 0 else 0x1_0000 lor (i mod 5) in
    let a = Striped_seen.claim resident fp ~budget ~ctx in
    let b = Striped_seen.claim spilly fp ~budget ~ctx in
    if a <> b then Alcotest.failf "claim %d diverges with spilling on" i
  done;
  Alcotest.(check int) "same distinct count"
    (Striped_seen.distinct resident)
    (Striped_seen.distinct spilly);
  Alcotest.(check bool) "the spill tier actually engaged" true
    (Striped_seen.spilled spilly > 0);
  Striped_seen.close resident;
  Striped_seen.close spilly

(* The same equivalence end-to-end: DYNVOTE_MC_SPILL forces the search's
   seen store onto the disk tier; verdict and statistics must not move. *)
let test_search_spill_equivalence () =
  let config = two_sites Decision.tdv_safe_flavor in
  let plain = Explorer.search ~config ~depth:6 () in
  Unix.putenv "DYNVOTE_MC_SPILL" "64";
  let spilled =
    Fun.protect
      ~finally:(fun () -> Unix.putenv "DYNVOTE_MC_SPILL" "")
      (fun () -> Explorer.search ~config ~depth:6 ())
  in
  Alcotest.(check bool) "identical result up to the spill statistic" true
    ({ plain with Explorer.spilled = 0 } = { spilled with Explorer.spilled = 0 });
  Alcotest.(check bool) "the spill tier actually engaged" true
    (spilled.Explorer.spilled > 0)

(* Frontier-scheduling independence: the explorer's verdict, the
   counterexample length, and the distinct count on a completed bound
   must not depend on whether the parallel search uses the stealing
   frontier or the root-alphabet shards — for a safe, an unsafe, and a
   patched policy.  (Transitions may differ: which worker first admits a
   state decides who expands it, and POR contexts can differ across
   interleavings.  The summary deliberately excludes them.) *)
let test_steal_shard_verdict_parity () =
  let summary (r : Explorer.result) =
    match r.Explorer.outcome with
    | Explorer.Safe { closed } -> `Safe (closed, r.Explorer.distinct)
    | Explorer.Violation { trace; _ } -> `Violation (List.length trace)
    | Explorer.Out_of_budget -> `Out_of_budget
  in
  List.iter
    (fun (name, depth) ->
      let p = policy name in
      let config =
        { (Checker.paper_config ()) with Harness.flavor = p.Harness.flavor }
      in
      let run ~jobs ~steal = Explorer.search ~jobs ~steal ~config ~depth () in
      let seq = summary (run ~jobs:1 ~steal:true) in
      if summary (run ~jobs:4 ~steal:true) <> seq then
        Alcotest.failf "%s: -j4 stealing frontier diverges from -j1" name;
      if summary (run ~jobs:4 ~steal:false) <> seq then
        Alcotest.failf "%s: -j4 root shards diverge from -j1" name)
    [ ("dv", 4); ("tdv", 5); ("tdv-safe", 4) ]

(* The paper's §3 four-copy topology: the published violation surfaces as
   a short schedule even at a shallow bound. *)
let test_paper_example_tdv () =
  let p = policy "tdv" in
  let report = Checker.check ~policy:p ~depth:5 (Checker.paper_config ()) in
  match report.Checker.verdict with
  | Checker.Counterexample { replay_matches; _ } ->
      Alcotest.(check bool) "replays identically" true replay_matches
  | _ -> Alcotest.fail "tdv hole not found on the paper example at depth 5"

(* Deep sweep of the paper scope, opt-in: DYNVOTE_MC_DEPTH=8 runs the
   full acceptance bound (~1 minute for all four policies). *)
let test_deep_sweep () =
  match Sys.getenv_opt "DYNVOTE_MC_DEPTH" with
  | None | Some "" -> ()
  | Some depth ->
      let depth = int_of_string depth in
      List.iter
        (fun name ->
          let p = policy name in
          let report =
            Checker.check ~policy:p ~depth (Checker.paper_config ())
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s verdict ok at depth %d" name depth)
            true (Checker.verdict_ok report);
          match (p.Harness.expect_safe, report.Checker.verdict) with
          | true, Checker.Counterexample _ ->
              Alcotest.failf "%s expected safe, found a counterexample" name
          | false, Checker.Clean _ ->
              Alcotest.failf "%s expected unsafe, swept clean" name
          | _ -> ())
        [ "dv"; "odv"; "tdv"; "tdv-safe" ]

let suite =
  [
    Alcotest.test_case "tdv hole found and replayed" `Quick test_tdv_hole_found;
    Alcotest.test_case "safe policies sweep clean" `Quick test_safe_policies_clean;
    Alcotest.test_case "search is deterministic" `Quick test_deterministic;
    Alcotest.test_case "symmetry reduction is sound" `Quick test_symmetry_sound;
    Alcotest.test_case "state budget reported" `Quick test_budget_exhaustion;
    Alcotest.test_case "budget counter never drifts (-j4)" `Quick
      test_budget_no_drift_parallel;
    Alcotest.test_case "partial-order reduction is sound (-j1/-j4)" `Quick
      test_por_equivalence;
    Alcotest.test_case "seen store: claim rule and admission cap" `Quick
      test_seen_store_claim;
    Alcotest.test_case "seen store: spilling changes no answer" `Quick
      test_seen_store_spill_equivalence;
    Alcotest.test_case "search under DYNVOTE_MC_SPILL is identical" `Quick
      test_search_spill_equivalence;
    Alcotest.test_case "stealing and sharded verdicts agree" `Quick
      test_steal_shard_verdict_parity;
    Alcotest.test_case "paper example: tdv counterexample" `Quick
      test_paper_example_tdv;
    Alcotest.test_case "deep sweep (DYNVOTE_MC_DEPTH)" `Slow test_deep_sweep;
  ]
