(* Bounded model checker: the published-TDV hole is found as a
   minimum-length counterexample that replays verbatim in the chaos
   harness; the corrected flavors exhaust small scopes clean; the search
   is deterministic; symmetry reduction only shrinks the state count.
   Set DYNVOTE_MC_DEPTH to also sweep the paper's four-copy example at a
   chosen bound (the cram test covers depth 8 of that scope). *)

module Checker = Dynvote_mc.Checker
module Explorer = Dynvote_mc.Explorer
module Space = Dynvote_mc.Space
module Harness = Dynvote_chaos.Harness

let policy name =
  match Harness.policy_of_string name with
  | Some p -> p
  | None -> Alcotest.failf "no policy %S" name

(* Two sites on one segment: the smallest scope exhibiting the hole. *)
let two_sites flavor =
  Checker.make_config ~flavor ~universe:(Site_set.of_list [ 0; 1 ])
    ~segment_of:(fun _ -> 0) ()

let config_for p = two_sites p.Harness.flavor

let test_tdv_hole_found () =
  let p = policy "tdv" in
  let report = Checker.check ~policy:p ~depth:5 (config_for p) in
  (match report.Checker.verdict with
  | Checker.Counterexample { schedule; violations; replay_matches; _ } ->
      Alcotest.(check bool) "replays identically in the harness" true
        replay_matches;
      Alcotest.(check bool) "at most five steps" true
        (List.length schedule.Dynvote_chaos.Schedule.steps <= 5);
      Alcotest.(check bool) "a violation is reported" true (violations <> [])
  | Checker.Clean _ -> Alcotest.fail "tdv hole not found at depth 5"
  | Checker.Inconclusive -> Alcotest.fail "state budget exhausted");
  Alcotest.(check bool) "counterexample on an expected-unsafe policy is ok" true
    (Checker.verdict_ok report)

let test_safe_policies_clean () =
  List.iter
    (fun name ->
      let p = policy name in
      let report = Checker.check ~policy:p ~depth:6 (config_for p) in
      (match report.Checker.verdict with
      | Checker.Clean _ -> ()
      | Checker.Counterexample { violations; _ } ->
          Alcotest.failf "%s unsafe: %a" name
            Fmt.(Dump.list Dynvote_chaos.Oracle.pp_violation)
            violations
      | Checker.Inconclusive -> Alcotest.failf "%s: budget exhausted" name);
      Alcotest.(check bool) (name ^ " verdict ok") true (Checker.verdict_ok report))
    [ "dv"; "odv"; "tdv-safe" ]

let test_deterministic () =
  let run () =
    Explorer.search ~config:(two_sites Decision.ldv_flavor) ~depth:5 ()
  in
  Alcotest.(check bool) "two searches, identical results" true (run () = run ())

(* Relabeling sites within a segment must never change the verdict, only
   fold equivalent states: same outcome, no larger seen table. *)
let test_symmetry_sound () =
  let config = Checker.paper_config ~flavor:Decision.dv_flavor () in
  let folded = Explorer.search ~symmetry:true ~config ~depth:4 () in
  let plain = Explorer.search ~symmetry:false ~config ~depth:4 () in
  (match (folded.Explorer.outcome, plain.Explorer.outcome) with
  | Explorer.Safe _, Explorer.Safe _ -> ()
  | _ -> Alcotest.fail "dv must be safe at depth 4 with and without symmetry");
  Alcotest.(check bool) "symmetry never grows the state count" true
    (folded.Explorer.distinct <= plain.Explorer.distinct);
  Alcotest.(check bool) "symmetry actually folds states" true
    (folded.Explorer.distinct < plain.Explorer.distinct)

let test_budget_exhaustion () =
  let result =
    Explorer.search ~max_states:50 ~config:(two_sites Decision.dv_flavor)
      ~depth:8 ()
  in
  match result.Explorer.outcome with
  | Explorer.Out_of_budget -> ()
  | _ -> Alcotest.fail "a 50-state budget cannot cover depth 8"

(* The paper's §3 four-copy topology: the published violation surfaces as
   a short schedule even at a shallow bound. *)
let test_paper_example_tdv () =
  let p = policy "tdv" in
  let report = Checker.check ~policy:p ~depth:5 (Checker.paper_config ()) in
  match report.Checker.verdict with
  | Checker.Counterexample { replay_matches; _ } ->
      Alcotest.(check bool) "replays identically" true replay_matches
  | _ -> Alcotest.fail "tdv hole not found on the paper example at depth 5"

(* Deep sweep of the paper scope, opt-in: DYNVOTE_MC_DEPTH=8 runs the
   full acceptance bound (~1 minute for all four policies). *)
let test_deep_sweep () =
  match Sys.getenv_opt "DYNVOTE_MC_DEPTH" with
  | None | Some "" -> ()
  | Some depth ->
      let depth = int_of_string depth in
      List.iter
        (fun name ->
          let p = policy name in
          let report =
            Checker.check ~policy:p ~depth (Checker.paper_config ())
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s verdict ok at depth %d" name depth)
            true (Checker.verdict_ok report);
          match (p.Harness.expect_safe, report.Checker.verdict) with
          | true, Checker.Counterexample _ ->
              Alcotest.failf "%s expected safe, found a counterexample" name
          | false, Checker.Clean _ ->
              Alcotest.failf "%s expected unsafe, swept clean" name
          | _ -> ())
        [ "dv"; "odv"; "tdv"; "tdv-safe" ]

let suite =
  [
    Alcotest.test_case "tdv hole found and replayed" `Quick test_tdv_hole_found;
    Alcotest.test_case "safe policies sweep clean" `Quick test_safe_policies_clean;
    Alcotest.test_case "search is deterministic" `Quick test_deterministic;
    Alcotest.test_case "symmetry reduction is sound" `Quick test_symmetry_sound;
    Alcotest.test_case "state budget reported" `Quick test_budget_exhaustion;
    Alcotest.test_case "paper example: tdv counterexample" `Quick
      test_paper_example_tdv;
    Alcotest.test_case "deep sweep (DYNVOTE_MC_DEPTH)" `Slow test_deep_sweep;
  ]
