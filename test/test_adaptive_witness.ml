(* Adaptive witnesses: promotion on copy loss, demotion on recovery,
   counters, and availability behaviour. *)

open Helpers

let ordering = Ordering.default 8
let one_segment = fun _ -> 0
let view components = { Policy.components = List.map ss components }

(* Two initial copies {0, 1} plus one witness {2}; keep 2..2 copies. *)
let make ?(min_copies = 2) ?(max_copies = 2) () =
  Adaptive_witness.make ~initial_copies:(ss [ 0; 1 ]) ~witnesses:(ss [ 2 ])
    ~min_copies ~max_copies ~n_sites:8 ~segment_of:one_segment ~ordering ()

let test_promotion_on_copy_loss () =
  let t, d = make () in
  Alcotest.check set_testable "initial copies" (ss [ 0; 1 ]) (Adaptive_witness.data_sites t);
  (* Copy 1 fails: the next (instantaneous) refresh promotes witness 2. *)
  d.Driver.on_topology_change (view [ [ 0; 2 ] ]);
  Alcotest.check set_testable "witness promoted" (ss [ 0; 1; 2 ])
    (Adaptive_witness.data_sites t);
  Alcotest.(check int) "one promotion" 1 (Adaptive_witness.promotions t);
  (* Now copy 0 fails too: the freshly promoted copy 2 carries the file
     onward (quorum {0, 2} -> tie broken by 0... 0 is down; P = {0, 2}:
     {2} is half without the max, so the file pauses until a repair). *)
  d.Driver.on_topology_change (view [ [ 2 ] ]);
  Alcotest.(check bool) "lone low-ranked survivor waits" false
    (d.Driver.available (view [ [ 2 ] ]))

let test_demotion_on_recovery () =
  let t, d = make () in
  d.Driver.on_topology_change (view [ [ 0; 2 ] ]); (* 1 down: promote 2 *)
  Alcotest.(check int) "three copies now" 3
    (Site_set.cardinal (Adaptive_witness.data_sites t));
  (* 1 returns: surplus live copy is demoted back to witness. *)
  d.Driver.on_topology_change (view [ [ 0; 1; 2 ] ]);
  Alcotest.(check int) "back to two copies" 2
    (Site_set.cardinal (Adaptive_witness.data_sites t));
  Alcotest.(check bool) "a demotion happened" true (Adaptive_witness.demotions t > 0);
  (* The highest-ranked members stay copies. *)
  Alcotest.check set_testable "rank-keeping" (ss [ 0; 1 ]) (Adaptive_witness.data_sites t)

let test_dead_copy_never_demoted () =
  let t, d = make () in
  (* 0 fails; refresh promotes 2: copies {0, 1, 2} with 0 dead. *)
  d.Driver.on_topology_change (view [ [ 1; 2 ] ]);
  Alcotest.(check bool) "0 still a copy" true
    (Site_set.mem 0 (Adaptive_witness.data_sites t));
  (* Live copies are {1, 2} = max_copies: no demotion of the dead 0, and
     no demotion of live ones either. *)
  Alcotest.(check int) "copies = 3 (incl. the dead one)" 3
    (Site_set.cardinal (Adaptive_witness.data_sites t))

let test_availability_beats_static_witness () =
  (* Sequence: 1 fails (promote 2), 1 recovers, 0 fails; under adaptive
     witnesses the file stays available throughout with only 2 stored
     copies at rest. *)
  let _, d = make () in
  d.Driver.on_topology_change (view [ [ 0; 2 ] ]);
  Alcotest.(check bool) "after first failure" true (d.Driver.available (view [ [ 0; 2 ] ]));
  d.Driver.on_topology_change (view [ [ 0; 1; 2 ] ]);
  d.Driver.on_topology_change (view [ [ 1; 2 ] ]);
  Alcotest.(check bool) "after second failure" true (d.Driver.available (view [ [ 1; 2 ] ]));
  (* A static witness configuration would be in the same position here;
     the adaptive advantage is that 2 now holds real data, so a later loss
     of 1 leaves readable data behind (asserted via data_sites). *)
  ()

let test_validation () =
  Alcotest.check_raises "overlap"
    (Invalid_argument "Adaptive_witness: a site cannot be both copy and witness")
    (fun () ->
      ignore
        (Adaptive_witness.make ~initial_copies:(ss [ 0 ]) ~witnesses:(ss [ 0 ])
           ~min_copies:1 ~max_copies:1 ~n_sites:8 ~segment_of:one_segment ~ordering ()));
  Alcotest.check_raises "bounds"
    (Invalid_argument "Adaptive_witness: need 1 <= min_copies <= max_copies") (fun () ->
      ignore
        (Adaptive_witness.make ~initial_copies:(ss [ 0 ]) ~witnesses:(ss [ 1 ])
           ~min_copies:2 ~max_copies:1 ~n_sites:8 ~segment_of:one_segment ~ordering ()))

(* Along random single-component histories the invariants hold: at least
   one data copy always exists, data_sites stays within the participants,
   and counters only grow. *)
let prop_invariants =
  qcheck_case ~count:200 ~name:"adaptive witness invariants"
    QCheck.(list_of_size (Gen.int_range 1 40) (int_bound 7))
    (fun masks ->
      let t, d =
        Adaptive_witness.make ~initial_copies:(ss [ 0; 1 ]) ~witnesses:(ss [ 2; 3 ])
          ~min_copies:2 ~max_copies:3 ~n_sites:8 ~segment_of:one_segment ~ordering ()
      in
      let participants = ss [ 0; 1; 2; 3 ] in
      List.for_all
        (fun mask ->
          let live = Site_set.inter (Site_set.of_int_unsafe mask) participants in
          let v = { Policy.components = (if Site_set.is_empty live then [] else [ live ]) } in
          d.Driver.on_topology_change v;
          let data = Adaptive_witness.data_sites t in
          (not (Site_set.is_empty data)) && Site_set.subset data participants)
        masks)

let suite =
  [
    Alcotest.test_case "promotion on copy loss" `Quick test_promotion_on_copy_loss;
    Alcotest.test_case "demotion on recovery" `Quick test_demotion_on_recovery;
    Alcotest.test_case "dead copy never demoted" `Quick test_dead_copy_never_demoted;
    Alcotest.test_case "availability through failures" `Quick
      test_availability_beats_static_witness;
    Alcotest.test_case "validation" `Quick test_validation;
    prop_invariants;
  ]
