(* The live replication service: wire codec round trips and fuzz, the
   persistence layer, and end-to-end protocol runs over real sockets —
   partition denial, heal, kill-and-restart recovery, a coordinator
   struck mid-COMMIT, amnesia — every run audited by replaying the
   merged on-disk operation logs through the chaos safety oracle. *)

open Helpers
module Wire = Dynvote_live.Wire
module Persist = Dynvote_live.Persist
module Live = Dynvote_live.Cluster
module Loadgen = Dynvote_live.Loadgen
module Node = Dynvote_live.Node
module Lease = Dynvote_live.Lease
module Oracle = Dynvote_chaos.Oracle
module Manual = Dynvote_obs.Clock.Manual

(* --- scratch directories ------------------------------------------- *)

let scratch_counter = ref 0

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let with_scratch f =
  incr scratch_counter;
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "dynvote-live-%d-%d" (Unix.getpid ()) !scratch_counter)
  in
  rm_rf dir;
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* Fast timeouts: tests partition and kill constantly, and every denied
   operation pays the full gather patience.  No fsync — kills here are
   socket severs, not power cuts. *)
let test_config =
  {
    Node.gather_timeout = 0.05;
    retries = 1;
    backoff = 2.0;
    lock_lease = 1.0;
    lock_retries = 6;
    lock_backoff = 0.02;
    durable = false;
    clock = Dynvote_obs.Clock.now;
    pipeline = 1;
    max_reuse = 0;
    shards = 0;
    resident = 4096;
  }

let with_cluster ?flavor ?segment_of ~universe f =
  with_scratch (fun dir ->
      let cluster =
        Live.create ?flavor ?segment_of ~config:test_config ~client_timeout:3.0
          ~universe ~dir ()
      in
      Fun.protect ~finally:(fun () -> Live.shutdown cluster) (fun () -> f cluster))

let check_status name expected (reply : Live.reply) =
  Alcotest.(check string)
    (Printf.sprintf "%s (info: %s)" name reply.Live.info)
    (match expected with
    | Wire.Granted -> "granted"
    | Wire.Denied -> "denied"
    | Wire.Aborted -> "aborted"
    | Wire.Degraded -> "degraded")
    (match reply.Live.status with
    | Wire.Granted -> "granted"
    | Wire.Denied -> "denied"
    | Wire.Aborted -> "aborted"
    | Wire.Degraded -> "degraded")

let check_clean name audit =
  List.iter
    (fun v -> Alcotest.failf "%s: %a" name Oracle.pp_violation v)
    (Oracle.violations audit.Live.oracle);
  Alcotest.(check bool) (name ^ ": torn logs") true (Site_set.is_empty audit.Live.torn)

(* --- wire codec ----------------------------------------------------- *)

let sample_replica = Replica.make ~op_no:7 ~version:5 ~partition:(ss [ 0; 1; 3 ])

let sample_payloads : Wire.payload list =
  [
    Wire.Hello_site { site = 3 };
    Wire.Hello_client;
    Wire.Welcome { id = 64 };
    Wire.State_request { round = 9 };
    Wire.State_reply { round = 9; fresh = true; replica = sample_replica };
    Wire.State_reply { round = 10; fresh = false; replica = sample_replica };
    Wire.Lock_request { op = 0x3_00_00_17 };
    Wire.Lock_reply { op = 0x3_00_00_17; granted = false };
    Wire.Unlock { op = 1 };
    Wire.Data_request { round = 2 };
    Wire.Data_reply { round = 2; version = 11; entries = [ ("a", "1"); ("key two", "value\x00with bytes") ];
                      rids = [ (1, 42); (7, 3) ] };
    Wire.Data_reply { round = 3; version = 0; entries = []; rids = [] };
    Wire.Commit { op_no = 8; version = 6; partition = ss [ 0; 1 ]; put = Some ("k", "v");
                  rid = (1 lsl 32) lor 42 };
    Wire.Commit { op_no = 9; version = 6; partition = ss [ 0; 1; 2; 3 ]; put = None; rid = 0 };
    Wire.Client_put { req = 1; key = "k"; value = String.make 300 'q' };
    Wire.Client_get { req = 2; key = "k" };
    Wire.Client_recover { req = 3 };
    Wire.Client_reply { req = 2; status = Wire.Granted; value = Some "v"; info = "" };
    Wire.Client_reply { req = 9; status = Wire.Denied; value = None; info = "below majority" };
    Wire.Client_reply { req = 10; status = Wire.Aborted; value = None; info = "timeout" };
    Wire.Abstain { round = 12 };
    Wire.KLock_request { op = 0x2_00_00_09; keys = [ "a"; "key two"; "" ] };
    Wire.KUnlock { op = 0x2_00_00_09; keys = [ "a" ] };
    Wire.KState_request { round = 4; keys = [ "a"; "b" ] };
    Wire.KState_reply
      {
        round = 4;
        fresh = true;
        states = [ ("a", sample_replica); ("b", Replica.initial (ss [ 0; 1; 2; 3 ])) ];
      };
    Wire.KState_reply { round = 5; fresh = false; states = [] };
    Wire.KCommit
      { key = "a"; op_no = 8; version = 6; partition = ss [ 0; 1 ];
        value = Some (String.make 300 'k'); rid = (2 lsl 32) lor 7 };
    Wire.KCommit
      { key = "k\x00bin"; op_no = 9; version = 6; partition = ss [ 0; 1; 2 ];
        value = None; rid = 0 };
    Wire.KData_request { round = 6; key = "a" };
    Wire.KData_reply
      { round = 6; key = "a"; version = 11; value = Some "v\x00bytes";
        rids = [ (1, 42); (7, 3) ] };
    Wire.KData_reply { round = 7; key = "b"; version = 1; value = None; rids = [] };
  ]

let sample_envelopes =
  List.mapi
    (fun i payload -> { Wire.src = i mod 7; dst = (i + 3) mod 70; payload })
    sample_payloads

let test_wire_roundtrip () =
  List.iter
    (fun env ->
      match Wire.decode (Wire.encode env) with
      | Ok decoded ->
          Alcotest.(check bool)
            (Printf.sprintf "round trip %s" (Wire.kind_name env.Wire.payload))
            true (decoded = env)
      | Error reason ->
          Alcotest.failf "decode %s failed: %s" (Wire.kind_name env.Wire.payload) reason)
    sample_envelopes

let test_wire_truncation () =
  List.iter
    (fun env ->
      let frame = Wire.encode env in
      for len = 0 to String.length frame - 1 do
        match Wire.decode (String.sub frame 0 len) with
        | Error _ -> ()
        | Ok _ ->
            Alcotest.failf "truncated %s frame at %d bytes accepted"
              (Wire.kind_name env.Wire.payload) len
      done)
    sample_envelopes

let test_wire_bitflip () =
  List.iter
    (fun env ->
      let frame = Wire.encode env in
      for i = 0 to String.length frame - 1 do
        for bit = 0 to 7 do
          let mutated = Bytes.of_string frame in
          Bytes.set mutated i
            (Char.chr (Char.code (Bytes.get mutated i) lxor (1 lsl bit)));
          match Wire.decode (Bytes.to_string mutated) with
          | Error _ -> ()
          | Ok _ ->
              Alcotest.failf "bit flip (byte %d bit %d) in %s frame accepted" i bit
                (Wire.kind_name env.Wire.payload)
        done
      done)
    sample_envelopes

let prop_wire_garbage_rejected =
  qcheck_case ~count:500 ~name:"random bytes never decode"
    QCheck.(string_of_size Gen.(int_range 0 200))
    (fun junk ->
      (* Random strings lack the magic/checksum; decode must reject
         without raising. *)
      match Wire.decode junk with Ok _ -> false | Error _ -> true)

(* --- persistence ----------------------------------------------------- *)

let sample_records =
  Persist.
    [
      Log_commit { seq = 1; op_no = 2; version = 2; partition = ss [ 0; 1; 2 ];
                   rid = (3 lsl 32) lor 9 };
      Log_intent { seq = 2; content = "blob-A" };
      Log_outcome { seq = 3; kind = `Write; granted = true; content = Some "blob-A";
                    rid = (3 lsl 32) lor 9 };
      Log_outcome { seq = 4; kind = `Read; granted = true; content = Some "blob-A"; rid = 0 };
      Log_outcome { seq = 5; kind = `Recover; granted = true; content = None; rid = 0 };
      Log_outcome { seq = 6; kind = `Write; granted = false; content = None; rid = 0 };
    ]

let test_oplog_roundtrip () =
  with_scratch (fun dir ->
      let path = Filename.concat dir "oplog.dvl" in
      let log = Persist.open_log ~path () in
      List.iter (Persist.append log) sample_records;
      Persist.close_log log;
      let records, torn = Persist.read_log ~path in
      Alcotest.(check bool) "no torn tail" false torn;
      Alcotest.(check bool) "records round trip" true (records = sample_records))

let test_oplog_torn_tail () =
  with_scratch (fun dir ->
      let path = Filename.concat dir "oplog.dvl" in
      let log = Persist.open_log ~path () in
      List.iter (Persist.append log) sample_records;
      Persist.close_log log;
      (* Chop mid-record: everything before the tear survives, the tear is
         reported, nothing is invented. *)
      let full = In_channel.with_open_bin path In_channel.input_all in
      let chopped = String.sub full 0 (String.length full - 3) in
      Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc chopped);
      let records, torn = Persist.read_log ~path in
      Alcotest.(check bool) "torn tail detected" true torn;
      Alcotest.(check int) "prefix survives" (List.length sample_records - 1)
        (List.length records))

let test_data_blob_roundtrip () =
  with_scratch (fun dir ->
      let path = Filename.concat dir "data.dvl" in
      let entries = [ ("b", "2"); ("a", "1"); ("c", String.make 1000 'z') ] in
      Persist.save_data ~path ~version:41 entries;
      match Persist.load_data_result ~path () with
      | Error reason -> Alcotest.fail reason
      | Ok (version, loaded, _rids) ->
          Alcotest.(check int) "version" 41 version;
          Alcotest.(check bool) "entries (sorted)" true
            (loaded = List.sort compare entries);
          (* Corrupt one byte: must come back as Error, not garbage. *)
          let raw = In_channel.with_open_bin path In_channel.input_all in
          let bad = Bytes.of_string raw in
          Bytes.set bad (String.length raw / 2)
            (Char.chr (Char.code (Bytes.get bad (String.length raw / 2)) lxor 0x10));
          Out_channel.with_open_bin path (fun oc ->
              Out_channel.output_bytes oc bad);
          (match Persist.load_data_result ~path () with
          | Error _ -> ()
          | Ok _ -> Alcotest.fail "corrupted data blob accepted"))

(* --- the lock lease under a hand-cranked clock ----------------------- *)

(* The wall-clock bug this guards against: a lease computed from
   [Unix.gettimeofday] expires early when NTP steps the clock forward and
   never when it steps it backward.  With the injectable clock the lease
   must expire exactly once — at [acquire + lease] on the clock it was
   given — no matter how that clock is stepped. *)
let test_lease_clock_steps () =
  let clk = Manual.create () in
  let now () = Manual.read clk in
  let lease = 1.0 in
  let l = Lease.create () in
  let acquire op = Lease.try_acquire l ~now:(now ()) ~lease ~op in
  Alcotest.(check bool) "op 1 acquires a free lock" true (acquire 1);
  Alcotest.(check bool) "op 1 refreshes its own lease" true (acquire 1);
  Manual.set clk 0.5;
  Alcotest.(check bool) "op 2 refused mid-lease" false (acquire 2);
  Alcotest.(check (option int)) "op 1 holds" (Some 1)
    (Lease.holder l ~now:(now ()));
  (* A backward step (the clock being stepped under us) must not expire
     the lease early... *)
  Manual.set clk (-100.0);
  Alcotest.(check bool) "op 2 refused after backward step" false (acquire 2);
  (* ...and refreshing at 1.4 pushes expiry to 2.4: the lease expires
     once, at the refreshed deadline, not at the original one. *)
  Manual.set clk 1.4;
  Alcotest.(check bool) "op 1 refreshes at 1.4" true (acquire 1);
  Manual.set clk 2.0;
  Alcotest.(check bool) "op 2 still refused at 2.0" false (acquire 2);
  Manual.set clk 2.5;
  Alcotest.(check (option int)) "lease expired exactly once" None
    (Lease.holder l ~now:(now ()));
  Alcotest.(check bool) "op 2 takes the expired lock" true (acquire 2);
  (* The old holder's lease must not resurrect when the clock steps back
     into its window. *)
  Manual.set clk 1.9;
  Alcotest.(check bool) "op 1 cannot reclaim its dead lease" false (acquire 1);
  Alcotest.(check (option int)) "op 2 holds after backward step" (Some 2)
    (Lease.holder l ~now:(now ()));
  Lease.release l ~op:1;
  Alcotest.(check (option int)) "a rival release is a no-op" (Some 2)
    (Lease.holder l ~now:(now ()));
  Lease.release l ~op:2;
  Alcotest.(check (option int)) "released" None (Lease.holder l ~now:(now ()))

(* Grep-enforced: no deadline or lease in the live service may read the
   raw wall clock.  The only [gettimeofday] in the tree belongs to
   [Dynvote_obs.Clock.wall]. *)
let test_no_wall_clock_in_live () =
  let dir =
    (* Tests run from [_build/default/test]; dune copies the sources. *)
    List.find_opt Sys.file_exists [ "../lib/live"; "lib/live"; "../../lib/live" ]
  in
  match dir with
  | None -> () (* sources not staged in this layout; nothing to scan *)
  | Some dir ->
      Array.iter
        (fun file ->
          if Filename.check_suffix file ".ml" || Filename.check_suffix file ".mli"
          then begin
            let path = Filename.concat dir file in
            let src = In_channel.with_open_bin path In_channel.input_all in
            let contains needle hay =
              let n = String.length needle and h = String.length hay in
              let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
              go 0
            in
            if contains "gettimeofday" src then
              Alcotest.failf "%s reads the raw wall clock (gettimeofday)" path
          end)
        (Sys.readdir dir)

(* --- loadgen arithmetic ---------------------------------------------- *)

let test_percentile_edges () =
  let check_nan name v =
    Alcotest.(check bool) name true (Float.is_nan v)
  in
  check_nan "empty -> nan" (Loadgen.percentile [||] 0.5);
  Alcotest.(check (float 0.0)) "single sample is every percentile p50" 7.0
    (Loadgen.percentile [| 7.0 |] 0.5);
  Alcotest.(check (float 0.0)) "single sample p99" 7.0
    (Loadgen.percentile [| 7.0 |] 0.99);
  Alcotest.(check (float 0.0)) "single sample p ~ 0" 7.0
    (Loadgen.percentile [| 7.0 |] 0.0001);
  let equal = Array.make 100 3.5 in
  List.iter
    (fun p ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "all-equal p%.0f" (p *. 100.))
        3.5 (Loadgen.percentile equal p))
    [ 0.01; 0.5; 0.95; 0.99; 1.0 ];
  let sorted = Array.init 100 (fun i -> float_of_int (i + 1)) in
  Alcotest.(check (float 0.0)) "p50 of 1..100" 50.0 (Loadgen.percentile sorted 0.50);
  Alcotest.(check (float 0.0)) "p99 of 1..100" 99.0 (Loadgen.percentile sorted 0.99);
  Alcotest.(check (float 0.0)) "p100 of 1..100" 100.0 (Loadgen.percentile sorted 1.0)

let test_worker_seeds_distinct () =
  (* The old scheme ([seed * 65599 + index]) collided across runs:
     (seed, index) and (seed - 1, index + 65599) produced the same
     stream.  Check exactly that pair, and that seeds within a run are
     distinct. *)
  let a = (Loadgen.worker_seeds ~seed:10 ~n:1).(0) in
  let b = (Loadgen.worker_seeds ~seed:9 ~n:65600).(65599) in
  Alcotest.(check bool) "old collision pair now distinct" true (a <> b);
  let seeds = Loadgen.worker_seeds ~seed:42 ~n:64 in
  let sorted = Array.copy seeds in
  Array.sort compare sorted;
  let dup = ref false in
  Array.iteri (fun i s -> if i > 0 && sorted.(i - 1) = s then dup := true) sorted;
  Alcotest.(check bool) "64 workers, 64 distinct seeds" false !dup;
  (* Deterministic: same seed, same streams. *)
  Alcotest.(check bool) "reproducible" true
    (Loadgen.worker_seeds ~seed:42 ~n:64 = seeds)

(* --- end to end over real sockets ----------------------------------- *)

let u4 = ss [ 0; 1; 2; 3 ]

let test_basic_replication () =
  with_cluster ~universe:u4 (fun cluster ->
      let c = Live.client cluster in
      check_status "put a" Wire.Granted (Live.put c ~at:0 ~key:"a" ~value:"1");
      let r = Live.get c ~at:3 ~key:"a" in
      check_status "get a at 3" Wire.Granted r;
      Alcotest.(check (option string)) "replicated value" (Some "1") r.Live.value;
      let r = Live.get c ~at:1 ~key:"missing" in
      check_status "get missing" Wire.Granted r;
      Alcotest.(check (option string)) "missing key" None r.Live.value;
      check_clean "basic" (Live.check cluster))

let test_partition_heal_recovery () =
  with_cluster ~universe:u4 (fun cluster ->
      let c = Live.client cluster in
      check_status "seed write" Wire.Granted (Live.put c ~at:0 ~key:"a" ~value:"1");

      (* Minority side must deny both reads and writes. *)
      Live.partition cluster [ ss [ 0; 1; 2 ]; ss [ 3 ] ];
      check_status "minority write denied" Wire.Denied
        (Live.put c ~at:3 ~key:"a" ~value:"rogue");
      check_status "minority read denied" Wire.Denied (Live.get c ~at:3 ~key:"a");
      check_status "majority write" Wire.Granted (Live.put c ~at:0 ~key:"a" ~value:"2");

      (* Heal: the stale side serves current data again (via verified
         fetch — site 3 is not in S until it recovers). *)
      Live.heal cluster;
      let r = Live.get c ~at:3 ~key:"a" in
      check_status "read after heal" Wire.Granted r;
      Alcotest.(check (option string)) "healed value" (Some "2") r.Live.value;
      check_status "recover 3" Wire.Granted (Live.recover_site c 3);

      (* Kill-and-restart: the node comes back from its on-disk ensemble
         and reintegrates. *)
      Live.kill cluster 2;
      check_status "dead site denied" Wire.Denied (Live.get c ~at:2 ~key:"a");
      check_status "write while 2 down" Wire.Granted
        (Live.put c ~at:1 ~key:"a" ~value:"3");
      Live.restart cluster 2;
      check_status "recover 2" Wire.Granted (Live.recover_site c 2);
      let r = Live.get c ~at:2 ~key:"a" in
      check_status "read at restarted site" Wire.Granted r;
      Alcotest.(check (option string)) "recovered value" (Some "3") r.Live.value;

      check_clean "partition/heal/restart" (Live.check cluster))

let test_coordinator_struck_mid_commit () =
  with_cluster ~universe:u4 (fun cluster ->
      let c = Live.client cluster in
      check_status "seed" Wire.Granted (Live.put c ~at:0 ~key:"a" ~value:"1");

      (* Strike coordinator 0 after its second COMMIT send: sites {0, 1}
         hold the new generation, {2, 3} never hear of it.  The client is
         told the write aborted — but its effects escaped (the paper's
         maybe-committed window, recorded as intent-without-outcome). *)
      Live.strike_after cluster 0 2;
      let r = Live.put c ~at:0 ~key:"a" ~value:"2" in
      check_status "struck write aborts to the client" Wire.Aborted r;

      (* {2, 3} alone are half of the old partition and lose the
         lexicographic tie-break (max element 0 is on the other side):
         they stay unavailable rather than re-issuing the generation. *)
      check_status "non-appliers alone stay blocked" Wire.Denied
        (Live.get c ~at:2 ~key:"a");

      (* The restarted coordinator completes the picture: {0, 1} + the
         tie-break make the half-committed generation win through. *)
      Live.restart cluster 0;
      let r = Live.get c ~at:2 ~key:"a" in
      check_status "read after restart" Wire.Granted r;
      Alcotest.(check (option string)) "maybe-committed write surfaced" (Some "2")
        r.Live.value;
      check_status "recover 2" Wire.Granted (Live.recover_site c 2);
      check_status "recover 3" Wire.Granted (Live.recover_site c 3);
      check_status "next write" Wire.Granted (Live.put c ~at:3 ~key:"a" ~value:"3");
      let r = Live.get c ~at:1 ~key:"a" in
      Alcotest.(check (option string)) "converged" (Some "3") r.Live.value;

      check_clean "mid-commit strike" (Live.check cluster))

let test_participant_killed_mid_write () =
  with_cluster ~universe:u4 (fun cluster ->
      let c = Live.client cluster in
      check_status "seed" Wire.Granted (Live.put c ~at:0 ~key:"a" ~value:"1");
      (* Kill participant 3 the moment the wave starts: its COMMIT is
         eaten by the dead socket, everyone else applies.  The write
         still succeeds (the coordinator holds the quorum), and 3 simply
         restarts stale. *)
      Live.set_commit_hook cluster 0
        (Some (fun ~sent ~total:_ -> if sent = 1 then Live.kill_async cluster 3));
      let r = Live.put c ~at:0 ~key:"a" ~value:"2" in
      check_status "write survives participant kill" Wire.Granted r;
      Live.set_commit_hook cluster 0 None;
      Live.restart cluster 3;
      check_status "recover 3" Wire.Granted (Live.recover_site c 3);
      let r = Live.get c ~at:3 ~key:"a" in
      Alcotest.(check (option string)) "caught up" (Some "2") r.Live.value;
      check_clean "participant kill" (Live.check cluster))

let test_amnesia_recovery () =
  with_cluster ~universe:u4 (fun cluster ->
      let c = Live.client cluster in
      check_status "seed" Wire.Granted (Live.put c ~at:0 ~key:"a" ~value:"1");
      Live.kill cluster 2;
      (* Torch the stable record: the restarted node must come up
         amnesiac — silent, refusing to coordinate — not trusting junk. *)
      let path = Persist.ensemble_path ~dir:(Live.dir cluster) 2 in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc "garbage");
      Live.restart cluster 2;
      let r = Live.get c ~at:2 ~key:"a" in
      check_status "amnesiac refuses to coordinate" Wire.Denied r;
      check_status "amnesiac recover" Wire.Granted (Live.recover_site c 2);
      let r = Live.get c ~at:2 ~key:"a" in
      check_status "read after recover" Wire.Granted r;
      Alcotest.(check (option string)) "value restored" (Some "1") r.Live.value;
      check_clean "amnesia" (Live.check cluster))

let test_segment_partition_validation () =
  (* Sites 0,1 share segment 0; splitting them must be rejected. *)
  with_cluster ~universe:u4 ~segment_of:(fun s -> if s < 2 then 0 else s)
    (fun cluster ->
      (match Live.partition cluster [ ss [ 0; 2 ]; ss [ 1; 3 ] ] with
      | () -> Alcotest.fail "segment-splitting partition accepted"
      | exception Invalid_argument _ -> ());
      Live.partition cluster [ ss [ 0; 1; 2 ]; ss [ 3 ] ];
      Live.heal cluster)

let test_loadgen_smoke () =
  with_cluster ~universe:(ss [ 0; 1; 2 ]) (fun cluster ->
      let config =
        {
          Loadgen.default with
          Loadgen.clients = 2;
          duration = 0.6;
          keys = 4;
          seed = 7;
        }
      in
      let r = Loadgen.run cluster config in
      let total = r.Loadgen.reads.Loadgen.issued + r.Loadgen.writes.Loadgen.issued in
      Alcotest.(check bool) "operations completed" true (total > 0);
      let granted = r.Loadgen.reads.Loadgen.granted + r.Loadgen.writes.Loadgen.granted in
      Alcotest.(check bool) "some operations granted" true (granted > 0);
      Alcotest.(check bool) "report renders" true
        (String.length (Fmt.str "%a" Loadgen.pp_result r) > 0);
      check_clean "loadgen" (Live.check cluster))

(* The long soak: sustained mixed load with faults injected mid-flight,
   then the full audit.  Gated like the deep model-checker sweep. *)
let test_soak () =
  match Sys.getenv_opt "DYNVOTE_LIVE_SOAK" with
  | None -> ()
  | Some _ ->
      with_cluster ~universe:u4 (fun cluster ->
          let chaos_done = ref false in
          let chaos =
            Thread.create
              (fun () ->
                let c = Live.client cluster in
                Thread.delay 0.5;
                Live.partition cluster [ ss [ 0; 1 ]; ss [ 2; 3 ] ];
                Thread.delay 0.5;
                Live.heal cluster;
                Thread.delay 0.3;
                Live.kill cluster 3;
                Thread.delay 0.5;
                Live.restart cluster 3;
                ignore (Live.recover_site c 3 : Live.reply);
                chaos_done := true)
              ()
          in
          let config =
            {
              Loadgen.default with
              Loadgen.clients = 4;
              duration = 4.0;
              keys = 8;
              seed = 42;
            }
          in
          let r = Loadgen.run cluster config in
          Thread.join chaos;
          Alcotest.(check bool) "chaos script ran" true !chaos_done;
          let issued =
            r.Loadgen.reads.Loadgen.issued + r.Loadgen.writes.Loadgen.issued
          in
          (* Disturbance windows make every gather pay its full timeout,
             so the floor asserts sustained progress, not throughput. *)
          Alcotest.(check bool)
            (Printf.sprintf "sustained load (%d issued)" issued)
            true (issued > 20);
          check_clean "soak" (Live.check cluster))

let suite =
  [
    Alcotest.test_case "wire round trip" `Quick test_wire_roundtrip;
    Alcotest.test_case "wire truncation rejected" `Quick test_wire_truncation;
    Alcotest.test_case "wire bit flips rejected" `Quick test_wire_bitflip;
    prop_wire_garbage_rejected;
    Alcotest.test_case "oplog round trip" `Quick test_oplog_roundtrip;
    Alcotest.test_case "oplog torn tail" `Quick test_oplog_torn_tail;
    Alcotest.test_case "data blob round trip" `Quick test_data_blob_roundtrip;
    Alcotest.test_case "lease under clock steps" `Quick test_lease_clock_steps;
    Alcotest.test_case "no wall clock in lib/live" `Quick test_no_wall_clock_in_live;
    Alcotest.test_case "percentile edge cases" `Quick test_percentile_edges;
    Alcotest.test_case "worker seeds distinct" `Quick test_worker_seeds_distinct;
    Alcotest.test_case "basic replication" `Quick test_basic_replication;
    Alcotest.test_case "partition / heal / restart" `Quick test_partition_heal_recovery;
    Alcotest.test_case "coordinator struck mid-commit" `Quick
      test_coordinator_struck_mid_commit;
    Alcotest.test_case "participant killed mid-write" `Quick
      test_participant_killed_mid_write;
    Alcotest.test_case "amnesia recovery" `Quick test_amnesia_recovery;
    Alcotest.test_case "segment partition validation" `Quick
      test_segment_partition_validation;
    Alcotest.test_case "loadgen smoke" `Quick test_loadgen_smoke;
    Alcotest.test_case "soak (DYNVOTE_LIVE_SOAK)" `Slow test_soak;
  ]
